// Background delta-merge compaction (DESIGN.md §16): fragmentation
// trigger selection, memory reclamation after update churn, pinned-reader
// byte identity across the segment swap, retire-list draining, the
// concurrent churn storm the TSan flavor runs, the storage-accounting
// regression (grow slack and tombstones must be visible to the gauges),
// and the service-level driver (reaper cadence + stats mirroring).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/server.h"
#include "storage/graph.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

// A PERSON ring of `n` vertices with stamped LINK edges: i -> (i+1) % n,
// finalized, plus catalog plumbing for churn transactions.
struct RingGraph {
  std::unique_ptr<Graph> graph = std::make_unique<Graph>();
  LabelId person, link;
  RelationId out;
  std::vector<VertexId> vertices;

  explicit RingGraph(int n) {
    Catalog& c = graph->catalog();
    person = c.AddVertexLabel("PERSON");
    link = c.AddEdgeLabel("LINK");
    graph->RegisterRelation(person, link, person, /*has_stamp=*/true);
    for (int i = 0; i < n; ++i) {
      vertices.push_back(graph->AddVertexBulk(person, i));
    }
    for (int i = 0; i < n; ++i) {
      graph->AddEdgeBulk(link, vertices[i], vertices[(i + 1) % n], i);
    }
    graph->FinalizeBulk();
    out = graph->FindRelation(person, link, person, Direction::kOut);
  }

  // One committed transaction: add `fan` edges from `src` (to distinct
  // targets derived from `salt`), remove the ring edge if `remove`. MV2PL
  // locks both endpoints, so every touched vertex is in the write set.
  void Churn(int src, int fan, int salt, bool remove) {
    int n = static_cast<int>(vertices.size());
    std::vector<int> dsts;
    for (int f = 0; f < fan; ++f) {
      dsts.push_back((src + 2 + (salt * fan + f) % (n - 3)) % n);
    }
    std::vector<VertexId> write_set = {vertices[src]};
    for (int d : dsts) write_set.push_back(vertices[d]);
    if (remove) write_set.push_back(vertices[(src + 1) % n]);
    auto txn = graph->BeginWrite(std::move(write_set));
    for (int f = 0; f < fan; ++f) {
      ASSERT_TRUE(
          txn->AddEdge(link, vertices[src], vertices[dsts[f]], salt * 100 + f)
              .ok());
    }
    if (remove) {
      ASSERT_TRUE(
          txn->RemoveEdge(link, vertices[src], vertices[(src + 1) % n]).ok());
    }
    ASSERT_NE(txn->Commit(), 0u);
  }
};

// Neighbor multiset of `v` as sorted (id, stamp) pairs, tombstone-pruned.
std::vector<std::pair<VertexId, int64_t>> EdgePairs(const Graph& g,
                                                    RelationId rel,
                                                    VertexId v, Version s) {
  AdjScratch scratch;
  AdjSpan span = g.Neighbors(rel, v, s, &scratch);
  std::vector<std::pair<VertexId, int64_t>> out;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] == kInvalidVertex) continue;
    out.emplace_back(span.ids[i], span.stamps ? span.stamps[i] : 0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t RssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  int got = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<size_t>(resident) * 4096;
}

TEST(CompactionTest, TriggerSelectsOnlyFragmentedRelations) {
  RingGraph ring(64);
  Graph& g = *ring.graph;

  // Freshly finalized: nothing is reclaimable, the trigger pass is a no-op.
  CompactionOptions opts;
  opts.trigger_frag_pct = 0.30;
  CompactionStats none = g.CompactRelations(opts);
  EXPECT_EQ(none.relations_compacted, 0u);
  EXPECT_FALSE(g.RelationCompacted(ring.out));

  // Heavy churn: overlay chains + tombstones push the reclaimable share of
  // LINK past the threshold.
  for (int i = 0; i < 64; ++i) ring.Churn(i, /*fan=*/6, i, /*remove=*/true);
  g.PruneVersions();
  CompactionStats did = g.CompactRelations(opts);
  EXPECT_GE(did.relations_compacted, 1u);
  EXPECT_TRUE(g.RelationCompacted(ring.out));
  EXPECT_GT(did.edges_encoded, 0u);
  EXPECT_GT(did.bytes_before, did.bytes_after);

  // Immediately re-running finds nothing above the threshold again.
  CompactionStats again = g.CompactRelations(opts);
  EXPECT_EQ(again.relations_compacted, 0u);
}

TEST(CompactionTest, ReclaimsMemoryAfterUpdateChurn) {
  // Two identical churned graphs; one compacts, one does not. The
  // compacted graph must shed >= 30% of MemoryBytes() (the bench_compaction
  // acceptance gate, in unit-test form).
  auto build = [] {
    auto ring = std::make_unique<RingGraph>(512);
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 512; ++i) {
        ring->Churn(i, /*fan=*/4, round * 512 + i, /*remove=*/round == 0);
      }
      ring->graph->PruneVersions();
    }
    return ring;
  };
  auto control = build();
  auto compacted = build();

  size_t before = compacted->graph->MemoryBytes();
  ASSERT_EQ(before, control->graph->MemoryBytes());

  CompactionOptions opts;
  opts.force = true;
  compacted->graph->CompactRelations(opts);
  // Reclaim needs the watermark strictly past the install version (a pin
  // taken at exactly the install version may still hold pre-swap spans),
  // so one trailing commit un-parks the retired batch. Mirror it on the
  // control graph to keep the two comparable.
  compacted->Churn(0, /*fan=*/1, 9999, /*remove=*/false);
  control->Churn(0, /*fan=*/1, 9999, /*remove=*/false);
  compacted->graph->PruneVersions();
  control->graph->PruneVersions();
  EXPECT_EQ(compacted->graph->RetiredBytes(), 0u);
  size_t after = compacted->graph->MemoryBytes();

  EXPECT_LT(after, before - before * 3 / 10)
      << "compaction reclaimed only " << before - after << " of " << before;
  // Content identical to the uncompacted control at head.
  Version cv = compacted->graph->CurrentVersion();
  ASSERT_EQ(cv, control->graph->CurrentVersion());
  for (int i = 0; i < 512; ++i) {
    ASSERT_EQ(EdgePairs(*compacted->graph, compacted->out,
                        compacted->vertices[i], cv),
              EdgePairs(*control->graph, control->out, control->vertices[i],
                        cv))
        << "vertex " << i;
  }
}

TEST(CompactionTest, PinnedReaderStaysByteIdenticalAcrossSwap) {
  RingGraph ring(128);
  Graph& g = *ring.graph;
  for (int i = 0; i < 128; ++i) ring.Churn(i, /*fan=*/3, i, /*remove=*/true);

  SnapshotHandle pin = g.PinSnapshot();
  Version s = pin.version();
  std::vector<std::vector<std::pair<VertexId, int64_t>>> expected;
  for (int i = 0; i < 128; ++i) {
    expected.push_back(EdgePairs(g, ring.out, ring.vertices[i], s));
  }

  // Post-pin churn + swap: the pin predates the install version, so the
  // replaced storage parks on the retire list instead of being freed.
  for (int i = 0; i < 128; ++i) ring.Churn(i, /*fan=*/2, 1000 + i, false);
  CompactionOptions opts;
  opts.force = true;
  ASSERT_GE(g.CompactRelations(opts).relations_compacted, 1u);
  g.PruneVersions();
  EXPECT_GT(g.RetiredBytes(), 0u) << "retired batch freed under a live pin";

  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(EdgePairs(g, ring.out, ring.vertices[i], s), expected[i])
        << "vertex " << i << " at pinned snapshot " << s;
  }

  // Releasing the pin (plus one commit to push the watermark strictly
  // past the install version) lets the next pass drain the park.
  pin.Release();
  ring.Churn(0, /*fan=*/1, 9999, /*remove=*/false);
  g.PruneVersions();
  EXPECT_EQ(g.RetiredBytes(), 0u);
}

// The TSan target: concurrent writers, head readers, and a compactor
// looping force-merge + prune. No assertion beyond "no race, no torn
// span": readers re-verify that every decoded neighbor id is a live
// vertex and stamps arrive iff the relation has them.
TEST(CompactionTest, ConcurrentChurnStormIsRaceFree) {
  RingGraph ring(64);
  Graph& g = *ring.graph;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&ring, t] {
      for (int i = 0; i < 150; ++i) {
        ring.Churn((t * 31 + i) % 64, /*fan=*/2, t * 1000 + i,
                   /*remove=*/i % 4 == 0);
      }
    });
  }
  std::thread compactor([&g, &stop] {
    CompactionOptions opts;
    opts.force = true;
    // do-while: on a loaded single-core box the writers can finish before
    // this thread is first scheduled; at least one pass must still run so
    // the run-counter assertion below holds.
    do {
      g.CompactRelations(opts);
      g.PruneVersions();
    } while (!stop.load(std::memory_order_acquire));
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      SnapshotHandle pin = g.PinSnapshot();
      size_t n = g.NumVerticesTotal();
      for (int i = 0; i < 64; ++i) {
        auto pairs = EdgePairs(g, ring.out, ring.vertices[i], pin.version());
        for (const auto& [id, stamp] : pairs) {
          ASSERT_LT(id, n) << "decoded neighbor out of range";
        }
      }
      pin.Release();
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  compactor.join();
  reader.join();
  g.PruneVersions();
  EXPECT_GT(g.compaction_runs_total(), 0u);
}

// Satellite regression: adjacency grow-on-insert slack and RemoveEdge
// tombstones used to be invisible to MemoryBytes()/OverlayBytes(), so a
// churned graph reported far less than its actual footprint and the
// service GC byte-trigger never fired. Cross-check the gauge against the
// process RSS delta while building a deliberately slack-heavy graph.
TEST(CompactionTest, MemoryGaugeTracksRssDeltaOnChurn) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer shadow memory distorts RSS";
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer shadow memory distorts RSS";
#endif
#endif
  size_t rss_before = RssBytes();
  if (rss_before == 0) GTEST_SKIP() << "/proc/self/statm unavailable";

  auto ring = std::make_unique<RingGraph>(4096);
  size_t gauge_floor = ring->graph->MemoryBytes();
  // Grow-heavy churn: every AddEdge commit lands in overlay chains and,
  // once merged, leaves grow slack; every 4th txn leaves a tombstone.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4096; ++i) {
      ring->Churn(i, /*fan=*/4, round * 4096 + i,
                  /*remove=*/round == 0 && i % 4 == 0);
    }
    ring->graph->PruneVersions();
  }
  size_t rss_delta = RssBytes() - rss_before;
  size_t gauge_delta = ring->graph->MemoryBytes() - gauge_floor;
  ASSERT_GT(rss_delta, 8u << 20) << "churn too small to measure via RSS";

  // Generous bounds: RSS includes allocator slop, freed-but-cached pages
  // and test scaffolding, so the gauge may undershoot — but a gauge blind
  // to slack/tombstones undershot by an order of magnitude. It must also
  // never exceed what the process actually grew by.
  EXPECT_GE(gauge_delta, rss_delta / 4)
      << "gauge " << gauge_delta << " vs RSS delta " << rss_delta;
  EXPECT_LE(gauge_delta, rss_delta * 2)
      << "gauge " << gauge_delta << " vs RSS delta " << rss_delta;
#endif
}

// Service driver: with compact_interval_seconds set, the reaper submits
// passes through the shared TaskScheduler and mirrors the graph's
// compaction totals into ServiceStats.
TEST(CompactionServiceTest, ReaperDrivesCompactionAndExportsStats) {
  testutil::SnbFixture fx(/*sf=*/0.01, /*seed=*/7);
  // Churn so the trigger has something to select.
  service::ServiceConfig config;
  config.compact_interval_seconds = 0.05;
  config.compact_trigger_frag_pct = 0.0;  // every non-clean relation
  service::Server server(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  bool compacted = false;
  for (int i = 0; i < 100 && !compacted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    compacted = server.stats().compaction_runs.load() > 0;
  }
  EXPECT_TRUE(compacted) << "reaper never drove a compaction pass";
  server.Drain(1.0);
  EXPECT_EQ(server.stats().compaction_segments.load(),
            fx.graph.CompactedSegments());
  EXPECT_EQ(server.stats().compaction_runs.load(),
            fx.graph.compaction_runs_total());
}

// ServiceStats::ToString carries the compaction line (ops debugging
// reads this dump; a counter that exists but is not printed is lost).
TEST(CompactionServiceTest, StatsDumpHasCompactionLine) {
  TinyGraph tiny;
  SnbData empty;
  service::Server server(tiny.graph.get(), &empty, {});
  EXPECT_NE(server.stats().ToString().find("compaction:"), std::string::npos);
}

}  // namespace
}  // namespace ges
