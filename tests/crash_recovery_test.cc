// Crash-recovery harness: forks a writer child that commits durable
// transactions in a loop, SIGKILLs it at a random point, then recovers the
// directory in-process and checks the two durability invariants:
//
//   1. zero committed-transaction loss — every transaction the child was
//      acknowledged for (its ack line was written AFTER Commit returned,
//      i.e. after the WAL fsync) is present after recovery;
//   2. no phantom writes — recovered state is an exact prefix of the
//      child's transaction sequence: no holes, no partial transactions,
//      no data from uncommitted tails.
//
// The child auto-checkpoints on a tiny WAL threshold, so kills also land
// inside snapshot writes and WAL rotations (the checkpoint crash window).
//
// Environment knobs (used by scripts/crash_loop.sh):
//   GES_CRASH_ITERS  fork/kill/recover iterations (default 6)
//   GES_CRASH_DIR    persistent data directory (default: fresh temp dir)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "storage/graph.h"

namespace ges {
namespace {

DurabilityOptions CrashOpts() {
  DurabilityOptions opts;
  // The child must be single-threaded after fork() and every ack must mean
  // "durable", so group commit with fsync-per-commit is the only safe mode.
  opts.wal.fsync_policy = FsyncPolicy::kAlways;
  // Tiny threshold: the writer checkpoints every few transactions, putting
  // kills inside snapshot writes and WAL rotations too.
  opts.checkpoint_wal_bytes = 4096;
  return opts;
}

struct CrashSchema {
  LabelId node;
  LabelId link;
  PropertyId val;
  PropertyId counter;
  RelationId link_out;
  VertexId root;
};

CrashSchema Resolve(Graph* g) {
  CrashSchema s;
  Catalog& c = g->catalog();
  s.node = c.AddVertexLabel("NODE");
  s.link = c.AddEdgeLabel("LINK");
  s.val = c.AddProperty(s.node, "val", ValueType::kInt64);
  s.counter = c.AddProperty(s.node, "counter", ValueType::kInt64);
  s.link_out = g->FindRelation(s.node, s.link, s.node, Direction::kOut);
  s.root = g->FindByExtId(s.node, 0, g->CurrentVersion());
  return s;
}

void Bootstrap(const std::string& dir) {
  Graph g;
  Catalog& c = g.catalog();
  LabelId node = c.AddVertexLabel("NODE");
  LabelId link = c.AddEdgeLabel("LINK");
  PropertyId val = c.AddProperty(node, "val", ValueType::kInt64);
  PropertyId counter = c.AddProperty(node, "counter", ValueType::kInt64);
  g.RegisterRelation(node, link, node);
  VertexId root = g.AddVertexBulk(node, 0);
  g.SetPropertyBulk(root, val, Value::Int(0));
  g.SetPropertyBulk(root, counter, Value::Int(0));
  g.FinalizeBulk();
  ASSERT_TRUE(g.EnableDurability(dir, CrashOpts()).ok());
}

int64_t MaxExt(const Graph& g, LabelId node) {
  Version v = g.CurrentVersion();
  std::vector<VertexId> nodes;
  g.ScanLabel(node, v, &nodes);
  int64_t max_ext = 0;
  for (VertexId n : nodes) max_ext = std::max(max_ext, g.ExtIdOf(n, v));
  return max_ext;
}

// The forked writer. Runs with plain return codes (no gtest in the child;
// it exits via _exit). Each transaction i atomically creates vertex ext=i
// (val = i*7), links root -> i, and bumps root's counter to i — so a
// recovered graph is valid iff it reflects an exact prefix.
int RunWriterChild(const std::string& dir) {
  std::unique_ptr<Graph> g;
  if (!Graph::Open(dir, CrashOpts(), &g).ok()) return 3;
  CrashSchema s = Resolve(g.get());
  if (s.root == kInvalidVertex) return 3;
  int64_t k = MaxExt(*g, s.node);

  int ack_fd = ::open((dir + "/acks.txt").c_str(),
                      O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (ack_fd < 0) return 4;

  for (int64_t i = k + 1; i <= k + 100000; ++i) {
    auto txn = g->BeginWrite({s.root});
    VertexId nv = txn->CreateVertex(s.node, i, {{s.val, Value::Int(i * 7)}});
    if (!txn->AddEdge(s.link, s.root, nv).ok()) return 5;
    txn->SetProperty(s.root, s.counter, Value::Int(i));
    Version v = 0;
    if (!txn->Commit(&v).ok()) return 6;
    // Ack AFTER Commit returned: the transaction is durable (WAL fsynced),
    // so this line is the "client was told it committed" record.
    char line[32];
    int n = std::snprintf(line, sizeof(line), "%lld\n",
                          static_cast<long long>(i));
    if (::write(ack_fd, line, static_cast<size_t>(n)) != n) return 7;
    g->MaybeCheckpoint();
  }
  return 0;
}

int64_t MaxAcked(const std::string& dir) {
  std::ifstream in(dir + "/acks.txt");
  int64_t max_acked = 0;
  int64_t v;
  while (in >> v) max_acked = std::max(max_acked, v);
  return max_acked;
}

// Recovers the directory and checks both invariants. Returns the number of
// applied transactions for progress reporting.
int64_t VerifyRecovered(const std::string& dir) {
  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  Status st = Graph::Open(dir, CrashOpts(), &g, &info);
  EXPECT_TRUE(st.ok()) << st.message();
  if (!st.ok()) return -1;

  CrashSchema s = Resolve(g.get());
  EXPECT_NE(s.root, kInvalidVertex);
  Version ver = g->CurrentVersion();

  std::vector<VertexId> nodes;
  g->ScanLabel(s.node, ver, &nodes);
  int64_t max_applied = 0;
  for (VertexId n : nodes) {
    max_applied = std::max(max_applied, g->ExtIdOf(n, ver));
  }

  // Invariant 1: nothing acknowledged is lost.
  int64_t max_acked = MaxAcked(dir);
  EXPECT_GE(max_applied, max_acked)
      << "acknowledged transaction lost after crash";

  // Invariant 2: exact prefix 1..max_applied, fully applied, no phantoms.
  EXPECT_EQ(nodes.size(), static_cast<size_t>(max_applied) + 1)
      << "holes or phantom vertices in the recovered ext sequence";
  for (int64_t i = 1; i <= max_applied; ++i) {
    VertexId v = g->FindByExtId(s.node, i, ver);
    EXPECT_NE(v, kInvalidVertex) << "missing vertex ext=" << i;
    if (v == kInvalidVertex) continue;
    EXPECT_EQ(g->GetProperty(v, s.val, ver), Value::Int(i * 7))
        << "partial transaction visible for ext=" << i;
  }
  uint32_t degree = 0;
  AdjSpan span = g->Neighbors(s.link_out, s.root, ver);
  for (uint32_t j = 0; j < span.size; ++j) {
    if (span.ids[j] != kInvalidVertex) ++degree;
  }
  EXPECT_EQ(degree, static_cast<uint32_t>(max_applied))
      << "root out-degree does not match applied transactions";
  EXPECT_EQ(g->GetProperty(s.root, s.counter, ver),
            Value::Int(max_applied))
      << "root counter out of step: partial transaction visible";
  return max_applied;
}

TEST(CrashRecoveryTest, RandomSigkillLoopLosesNothing) {
  const char* dir_env = std::getenv("GES_CRASH_DIR");
  std::string dir;
  bool own_dir = false;
  if (dir_env != nullptr && dir_env[0] != '\0') {
    dir = dir_env;
    std::filesystem::create_directories(dir);
  } else {
    char buf[] = "/tmp/ges_crash_test_XXXXXX";
    dir = ::mkdtemp(buf);
    own_dir = true;
  }
  const char* iters_env = std::getenv("GES_CRASH_ITERS");
  int iters = iters_env != nullptr ? std::atoi(iters_env) : 6;

  if (!Graph::SnapshotExists(dir)) {
    Bootstrap(dir);
    if (::testing::Test::HasFatalFailure()) return;
  }

  std::random_device rd;
  std::mt19937_64 rng(rd());
  for (int iter = 0; iter < iters; ++iter) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: plain writer, no gtest machinery, no exit handlers.
      ::_exit(RunWriterChild(dir));
    }
    // Kill at a random point: during recovery, mid-commit, mid-fsync or
    // mid-checkpoint.
    ::usleep(static_cast<useconds_t>(rng() % 40000));
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    ASSERT_TRUE(killed || clean_exit)
        << "writer child failed before the kill: status=" << status;

    int64_t applied = VerifyRecovered(dir);
    ASSERT_GE(applied, 0);
    if (::testing::Test::HasNonfatalFailure()) {
      FAIL() << "durability invariant violated at iteration " << iter
             << " (applied=" << applied << ")";
    }
  }

  if (own_dir) std::filesystem::remove_all(dir);
}

// Version-chain GC is purely in-memory: pruning between durable commits
// must not change what the WAL replays or what a recovered graph reads.
TEST(CrashRecoveryTest, RecoveryAfterGcReplaysCorrectly) {
  char buf[] = "/tmp/ges_gc_recovery_XXXXXX";
  std::string dir = ::mkdtemp(buf);
  Bootstrap(dir);
  if (::testing::Test::HasFatalFailure()) return;

  {
    std::unique_ptr<Graph> g;
    ASSERT_TRUE(Graph::Open(dir, CrashOpts(), &g).ok());
    CrashSchema s = Resolve(g.get());
    ASSERT_NE(s.root, kInvalidVertex);
    for (int64_t i = 1; i <= 40; ++i) {
      auto txn = g->BeginWrite({s.root});
      VertexId nv =
          txn->CreateVertex(s.node, i, {{s.val, Value::Int(i * 7)}});
      ASSERT_TRUE(txn->AddEdge(s.link, s.root, nv).ok());
      txn->SetProperty(s.root, s.counter, Value::Int(i));
      Version cv = 0;
      ASSERT_TRUE(txn->Commit(&cv).ok());
      // Prune mid-stream: collapses root's counter/adjacency chains while
      // the WAL keeps the full history.
      if (i % 10 == 0) {
        GcStats gc = g->PruneVersions();
        if (i > 10) {
          EXPECT_GT(gc.entries_pruned, 0u) << "i=" << i;
        }
      }
    }
    // Exit WITHOUT a checkpoint: recovery must replay the whole WAL over
    // the bootstrap snapshot, rebuilding the chains GC collapsed.
  }

  int64_t applied = VerifyRecovered(dir);
  EXPECT_EQ(applied, 40);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ges
