// Fusion-rewrite tests: the optimizer's pattern matching, rule gating, and
// semantic preservation.
#include "executor/optimizer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

Plan ExpandPropFilterPlan(const TinyGraph& tiny) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 3)
      .Expand("p", "m", {tiny.person_messages})
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(110))))
      .Output({"m", "len"});
  return b.Build();
}

TEST(OptimizerTest, FusesExpandGetPropertyFilter) {
  TinyGraph tiny;
  Plan plan = ExpandPropFilterPlan(tiny);
  Plan fused = OptimizePlan(plan, ExecOptions{});
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_EQ(fused.ops[1].type, OpType::kExpandFiltered);
  EXPECT_EQ(fused.ops[1].out_column, "m");
  EXPECT_EQ(fused.ops[1].other_column, "len");
  EXPECT_EQ(fused.ops[1].property, tiny.len);
}

TEST(OptimizerTest, FilterFusionDisabledByOption) {
  TinyGraph tiny;
  ExecOptions opt;
  opt.fuse_filter_into_expand = false;
  Plan fused = OptimizePlan(ExpandPropFilterPlan(tiny), opt);
  ASSERT_EQ(fused.ops.size(), 4u);
  EXPECT_EQ(fused.ops[1].type, OpType::kExpand);
}

TEST(OptimizerTest, NoFilterFusionWhenPredicateSpansColumns) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 3)
      .GetProperty("p", tiny.id, ValueType::kInt64, "pid")
      .Expand("p", "m", {tiny.person_messages})
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Col("pid")))
      .Output({"m"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  for (const PlanOp& op : fused.ops) {
    EXPECT_NE(op.type, OpType::kExpandFiltered);
  }
}

TEST(OptimizerTest, NoFilterFusionForMultiHopExpand) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("p", "f", {tiny.knows_out}, 1, 2, true, true)
      .GetProperty("f", tiny.id, ValueType::kInt64, "fid")
      .Filter(Expr::Gt(Expr::Col("fid"), Expr::Lit(Value::Int(0))))
      .Output({"fid"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  for (const PlanOp& op : fused.ops) {
    EXPECT_NE(op.type, OpType::kExpandFiltered);
  }
}

TEST(OptimizerTest, OrderByWithLimitBecomesTopK) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .OrderBy({{"len", false}}, 3)
      .Output({"len"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  EXPECT_EQ(fused.ops.back().type, OpType::kTopK);
}

TEST(OptimizerTest, OrderByWithoutLimitStays) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .OrderBy({{"len", false}})
      .Output({"len"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  EXPECT_EQ(fused.ops.back().type, OpType::kOrderBy);
}

TEST(OptimizerTest, AggregateProjectOrderByFusesToAggProjectTop) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .Expand("m", "c", {tiny.msg_creator})
      .GetProperty("c", tiny.id, ValueType::kInt64, "cid")
      .Aggregate({"cid"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .Project({}, {ComputedColumn{Expr::Mul(Expr::Col("cnt"),
                                             Expr::Lit(Value::Int(2))),
                                   "cnt2", ValueType::kInt64}})
      .OrderBy({{"cnt2", false}}, 2)
      .Output({"cid", "cnt2"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  ASSERT_EQ(fused.ops.back().type, OpType::kAggProjectTop);
  const PlanOp& op = fused.ops.back();
  EXPECT_EQ(op.group_by, std::vector<std::string>{"cid"});
  EXPECT_EQ(op.aggs.size(), 1u);
  EXPECT_EQ(op.computed.size(), 1u);
  EXPECT_EQ(op.limit, 2u);
}

TEST(OptimizerTest, AggregateWithoutOrderByNotFused) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .Expand("m", "c", {tiny.msg_creator})
      .GetProperty("c", tiny.id, ValueType::kInt64, "cid")
      .Aggregate({"cid"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .Output({"cid", "cnt"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  EXPECT_EQ(fused.ops.back().type, OpType::kAggregate);
}

TEST(OptimizerTest, FilterPushdownMovesFilterBeforeLaterExpands) {
  TinyGraph tiny;
  // Filter on a first-hop property written AFTER a second expand: the RBO
  // pass must move it between the two expands.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("p", "f", {tiny.knows_out})
      .GetProperty("f", tiny.id, ValueType::kInt64, "fid")
      .Expand("f", "m", {tiny.person_messages})
      .Filter(Expr::Gt(Expr::Col("fid"), Expr::Lit(Value::Int(1))))
      .Output({"fid", "m"});
  Plan plan = b.Build();
  Plan fused = OptimizePlan(plan, ExecOptions{});
  // Pushdown places the filter right behind its GetProperty, which then
  // fuses with the first Expand: Seek, ExpandFiltered, Expand.
  ASSERT_EQ(fused.ops.size(), 3u);
  EXPECT_EQ(fused.ops[1].type, OpType::kExpandFiltered);
  EXPECT_EQ(fused.ops[2].type, OpType::kExpand);

  // With the fusion rule disabled the filter still moves ahead of the
  // second expand.
  ExecOptions no_fuse;
  no_fuse.fuse_filter_into_expand = false;
  Plan moved = OptimizePlan(plan, no_fuse);
  ASSERT_EQ(moved.ops.size(), 5u);
  EXPECT_EQ(moved.ops[3].type, OpType::kFilter);
  EXPECT_EQ(moved.ops[4].type, OpType::kExpand);
}

TEST(OptimizerTest, FilterPushdownStopsAtBarriers) {
  TinyGraph tiny;
  // An aggregation between the producer and the filter is a barrier: the
  // filter consumes the aggregate's output and must stay put.
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .Expand("m", "c", {tiny.msg_creator})
      .GetProperty("c", tiny.id, ValueType::kInt64, "cid")
      .Aggregate({"cid"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .Filter(Expr::Gt(Expr::Col("cnt"), Expr::Lit(Value::Int(1))))
      .Output({"cid", "cnt"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  EXPECT_EQ(fused.ops.back().type, OpType::kFilter);
}

TEST(OptimizerTest, FilterPushdownPreservesResults) {
  TinyGraph tiny;
  GraphView view(tiny.graph.get());
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("p", "f", {tiny.knows_out})
      .GetProperty("f", tiny.id, ValueType::kInt64, "fid")
      .Expand("f", "m", {tiny.person_messages})
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("fid"), Expr::Lit(Value::Int(1))))
      .Filter(Expr::Lt(Expr::Col("len"), Expr::Lit(Value::Int(130))))
      .OrderBy({{"len", true}, {"fid", true}})
      .Output({"fid", "len"});
  Plan plan = b.Build();
  auto baseline =
      testutil::OrderedRows(Executor(ExecMode::kFlat).Run(plan, view).table);
  auto fused = testutil::OrderedRows(
      Executor(ExecMode::kFactorizedFused).Run(plan, view).table);
  EXPECT_EQ(fused, baseline);
  EXPECT_GT(baseline.size(), 0u);
}

TEST(OptimizerTest, EachRuleIndividuallyPreservesResults) {
  TinyGraph tiny;
  GraphView view(tiny.graph.get());
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 3)
      .Expand("p", "m", {tiny.person_messages})
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(100))))
      .GetProperty("m", tiny.id, ValueType::kInt64, "mid")
      .Aggregate({"mid"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .OrderBy({{"mid", true}}, 10)
      .Output({"mid", "cnt"});
  Plan plan = b.Build();

  auto baseline =
      testutil::OrderedRows(Executor(ExecMode::kFlat).Run(plan, view).table);
  for (int rule = 0; rule < 3; ++rule) {
    ExecOptions opt;
    opt.fuse_filter_into_expand = rule == 0;
    opt.fuse_topk = rule == 1;
    opt.fuse_agg_project_top = rule == 2;
    Executor exec(ExecMode::kFactorizedFused, opt);
    auto rows = testutil::OrderedRows(exec.Run(plan, view).table);
    EXPECT_EQ(rows, baseline) << "rule " << rule;
  }
}

}  // namespace
}  // namespace ges
