// Unit tests for the storage layer: catalog, adjacency arrays, property
// tables, graph bulk load and reads.
#include <gtest/gtest.h>

#include "storage/adjacency.h"
#include "storage/catalog.h"
#include "storage/graph.h"
#include "storage/property_store.h"
#include "tests/test_util.h"

namespace ges {
namespace {

TEST(CatalogTest, LabelsAndPropertiesRoundTrip) {
  Catalog c;
  LabelId person = c.AddVertexLabel("PERSON");
  LabelId post = c.AddVertexLabel("POST");
  LabelId knows = c.AddEdgeLabel("KNOWS");
  EXPECT_EQ(c.VertexLabel("PERSON"), person);
  EXPECT_EQ(c.VertexLabel("POST"), post);
  EXPECT_EQ(c.EdgeLabel("KNOWS"), knows);
  EXPECT_EQ(c.VertexLabel("NOPE"), kInvalidLabel);
  EXPECT_EQ(c.VertexLabelName(person), "PERSON");

  PropertyId name = c.AddProperty(person, "name", ValueType::kString);
  PropertyId age = c.AddProperty(person, "age", ValueType::kInt64);
  // Same property name on another label shares the id but gets its own slot.
  PropertyId name2 = c.AddProperty(post, "name", ValueType::kString);
  EXPECT_EQ(name, name2);
  EXPECT_EQ(c.PropertySlot(person, name), 0);
  EXPECT_EQ(c.PropertySlot(person, age), 1);
  EXPECT_EQ(c.PropertySlot(post, name), 0);
  EXPECT_EQ(c.PropertySlot(post, age), -1);
  EXPECT_EQ(c.PropertyType(person, age), ValueType::kInt64);
}

TEST(CatalogTest, ReregistrationIsIdempotent) {
  Catalog c;
  LabelId a = c.AddVertexLabel("A");
  EXPECT_EQ(c.AddVertexLabel("A"), a);
  PropertyId p = c.AddProperty(a, "x", ValueType::kInt64);
  EXPECT_EQ(c.AddProperty(a, "x", ValueType::kInt64), p);
  EXPECT_EQ(c.LabelProperties(a).size(), 1u);
}

TEST(AdjacencyTest, BulkBuildPacksPerVertex) {
  AdjacencyTable t(RelationKey{0, 0, 0, Direction::kOut}, false);
  t.StageEdge(0, 1);
  t.StageEdge(0, 2);
  t.StageEdge(2, 0);
  t.Finalize(3);
  EXPECT_EQ(t.num_edges(), 3u);
  AdjSpan s0 = t.Neighbors(0);
  ASSERT_EQ(s0.size, 2u);
  EXPECT_EQ(s0.ids[0], 1u);
  EXPECT_EQ(s0.ids[1], 2u);
  EXPECT_EQ(t.Neighbors(1).size, 0u);
  EXPECT_EQ(t.Neighbors(2).size, 1u);
  EXPECT_EQ(t.Neighbors(99).size, 0u);  // out of range: empty
}

TEST(AdjacencyTest, StampsTravelWithNeighbors) {
  AdjacencyTable t(RelationKey{0, 0, 0, Direction::kOut}, true);
  t.StageEdge(0, 5, 111);
  t.StageEdge(0, 6, 222);
  t.Finalize(1);
  AdjSpan s = t.Neighbors(0);
  ASSERT_EQ(s.size, 2u);
  ASSERT_NE(s.stamps, nullptr);
  EXPECT_EQ(s.stamps[0], 111);
  EXPECT_EQ(s.stamps[1], 222);
}

TEST(AdjacencyTest, InsertGrowsWithDoubling) {
  AdjacencyTable t(RelationKey{0, 0, 0, Direction::kOut}, false);
  t.Finalize(1);
  for (VertexId i = 0; i < 100; ++i) t.InsertEdge(0, 1000 + i);
  AdjSpan s = t.Neighbors(0);
  ASSERT_EQ(s.size, 100u);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(s.ids[i], 1000 + i);
  EXPECT_EQ(t.num_edges(), 100u);
}

TEST(AdjacencyTest, RemoveTombstones) {
  AdjacencyTable t(RelationKey{0, 0, 0, Direction::kOut}, false);
  t.StageEdge(0, 1);
  t.StageEdge(0, 2);
  t.Finalize(1);
  EXPECT_TRUE(t.RemoveEdge(0, 1));
  EXPECT_FALSE(t.RemoveEdge(0, 9));
  AdjSpan s = t.Neighbors(0);
  ASSERT_EQ(s.size, 2u);  // slot kept, marked
  EXPECT_EQ(s.ids[0], kInvalidVertex);
  EXPECT_EQ(s.ids[1], 2u);
  EXPECT_EQ(t.Degree(0), 1u);
  EXPECT_EQ(t.num_edges(), 1u);
}

TEST(AdjacencyTest, InsertIntoNewVertexAfterFinalize) {
  AdjacencyTable t(RelationKey{0, 0, 0, Direction::kOut}, false);
  t.Finalize(2);
  t.InsertEdge(5, 1);  // vertex beyond the finalized range
  EXPECT_EQ(t.Neighbors(5).size, 1u);
}

TEST(PropertyTableTest, AppendAndAccess) {
  StringDict dict;
  PropertyTable t({ValueType::kInt64, ValueType::kString}, &dict);
  size_t r0 = t.AppendRow();
  size_t r1 = t.AppendRow();
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  t.Set(0, 0, Value::Int(10));
  t.Set(0, 1, Value::String("x"));
  t.Set(1, 0, Value::Int(20));
  EXPECT_EQ(t.Get(0, 0), Value::Int(10));
  EXPECT_EQ(t.Get(0, 1), Value::String("x"));
  EXPECT_EQ(t.Get(1, 0), Value::Int(20));
  EXPECT_EQ(t.num_rows(), 2u);
  // String cells are dictionary codes; the unset row decodes to "".
  EXPECT_TRUE(t.Column(1).dict_encoded());
  EXPECT_EQ(t.Column(1).GetCode(0), dict.Find("x"));
  EXPECT_EQ(t.Get(1, 1), Value::String(""));
}

TEST(GraphTest, BulkLoadAndSnapshotReads) {
  testutil::TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version v = g.CurrentVersion();
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(g.NumVertices(tiny.person, v), 4u);
  EXPECT_EQ(g.NumVertices(tiny.message, v), 6u);

  // p0 knows p1, p2.
  AdjSpan s = g.Neighbors(tiny.knows_out, tiny.persons[0], v);
  ASSERT_EQ(s.size, 2u);
  EXPECT_EQ(s.ids[0], tiny.persons[1]);
  EXPECT_EQ(s.ids[1], tiny.persons[2]);

  // p3 created m3, m4, m5 (via IN table).
  AdjSpan msgs = g.Neighbors(tiny.person_messages, tiny.persons[3], v);
  EXPECT_EQ(msgs.size, 3u);

  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, v), Value::Int(140));
  EXPECT_EQ(g.LabelOf(tiny.messages[0], v), tiny.message);
  EXPECT_EQ(g.FindByExtId(tiny.person, 2, v), tiny.persons[2]);
  EXPECT_EQ(g.FindByExtId(tiny.person, 99, v), kInvalidVertex);
}

TEST(GraphTest, ScanLabel) {
  testutil::TinyGraph tiny;
  std::vector<VertexId> out;
  tiny.graph->ScanLabel(tiny.person, 0, &out);
  EXPECT_EQ(out, tiny.persons);
}

TEST(GraphTest, RelationResolution) {
  testutil::TinyGraph tiny;
  // Both directions resolvable; mismatched labels are not.
  EXPECT_NE(tiny.graph->FindRelation(tiny.person, tiny.knows, tiny.person,
                                     Direction::kOut),
            kInvalidRelation);
  EXPECT_NE(tiny.graph->FindRelation(tiny.person, tiny.knows, tiny.person,
                                     Direction::kIn),
            kInvalidRelation);
  EXPECT_EQ(tiny.graph->FindRelation(tiny.message, tiny.knows, tiny.person,
                                     Direction::kOut),
            kInvalidRelation);
}

TEST(GraphTest, EdgeCountReportsLogicalEdges) {
  testutil::TinyGraph tiny;
  // 6 has_creator + 8 knows (4 symmetric pairs) = 14 logical edges.
  EXPECT_EQ(tiny.graph->NumEdgesTotal(), 14u);
}

TEST(GraphTest, MemoryAccountingNonZero) {
  testutil::TinyGraph tiny;
  EXPECT_GT(tiny.graph->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace ges
