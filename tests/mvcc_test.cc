// MV2PL concurrency-control tests: snapshot isolation, copy-on-write
// versions, non-blocking reads, concurrent writers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "queries/ldbc.h"
#include "service/client.h"
#include "service/server.h"
#include "storage/graph.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

TEST(MvccTest, CommitAdvancesVersion) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version v0 = g.CurrentVersion();
  auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[3]});
  ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 7)
                  .ok());
  Version commit = txn->Commit();
  EXPECT_EQ(commit, v0 + 1);
  EXPECT_EQ(g.CurrentVersion(), commit);
}

TEST(MvccTest, OldSnapshotDoesNotSeeNewEdge) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version before = g.CurrentVersion();
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], before), 2u);

  auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[3]});
  ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 7)
                  .ok());
  Version after = txn->Commit();

  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], before), 2u)
      << "old snapshot must not observe the new edge";
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], after), 3u);
}

TEST(MvccTest, RemoveEdgeVersioned) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version before = g.CurrentVersion();
  auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[1]});
  ASSERT_TRUE(txn->RemoveEdge(tiny.knows, tiny.persons[0], tiny.persons[1])
                  .ok());
  Version after = txn->Commit();
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], before), 2u);
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], after), 1u);
  // The IN direction is updated too.
  EXPECT_EQ(g.Degree(g.FindRelation(tiny.person, tiny.knows, tiny.person,
                                    Direction::kIn),
                     tiny.persons[1], after),
            1u);
}

TEST(MvccTest, PropertyWriteVersioned) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version before = g.CurrentVersion();
  auto txn = g.BeginWrite({tiny.messages[0]});
  txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(999));
  Version after = txn->Commit();
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, before),
            Value::Int(140));
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, after),
            Value::Int(999));
}

TEST(MvccTest, CreateVertexVisibleOnlyAfterCommit) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version before = g.CurrentVersion();
  auto txn = g.BeginWrite({tiny.persons[0]});
  VertexId nv = txn->CreateVertex(tiny.person, 100,
                                  {{tiny.id, Value::Int(100)}});
  ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], nv, 1).ok());
  EXPECT_EQ(g.LabelOf(nv, before), kInvalidLabel);
  Version after = txn->Commit();

  EXPECT_EQ(g.LabelOf(nv, after), tiny.person);
  EXPECT_EQ(g.LabelOf(nv, before), kInvalidLabel);
  EXPECT_EQ(g.FindByExtId(tiny.person, 100, after), nv);
  EXPECT_EQ(g.FindByExtId(tiny.person, 100, before), kInvalidVertex);
  EXPECT_EQ(g.NumVertices(tiny.person, after), 5u);
  EXPECT_EQ(g.NumVertices(tiny.person, before), 4u);
  EXPECT_EQ(g.GetProperty(nv, tiny.id, after), Value::Int(100));
  // New vertex reachable via the new edge at the new snapshot.
  AdjSpan s = g.Neighbors(tiny.knows_out, tiny.persons[0], after);
  bool found = false;
  for (uint32_t i = 0; i < s.size; ++i) found |= s.ids[i] == nv;
  EXPECT_TRUE(found);
}

TEST(MvccTest, AbortDiscardsChanges) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version before = g.CurrentVersion();
  {
    auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 7)
                    .ok());
    txn->Abort();
  }
  EXPECT_EQ(g.CurrentVersion(), before);
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], g.CurrentVersion()),
            2u);
}

TEST(MvccTest, EdgeEndpointsMustBeInWriteSet) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  auto txn = g.BeginWrite({tiny.persons[0]});
  Status s = txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 7);
  EXPECT_FALSE(s.ok());
  txn->Abort();
}

TEST(MvccTest, SequentialTransactionsStackVersions) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  std::vector<Version> versions;
  for (int i = 0; i < 5; ++i) {
    auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], i).ok());
    versions.push_back(txn->Commit());
  }
  // Each snapshot sees exactly the edges committed up to it.
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], versions[i]),
              2u + i + 1);
  }
}

// Concurrency: readers run against snapshots while writers commit; readers
// must always observe a consistent degree pair (the symmetric KNOWS edge is
// added to both endpoints atomically at commit).
TEST(MvccTest, ConcurrentReadersSeeAtomicCommits) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  RelationId knows_in =
      g.FindRelation(tiny.person, tiny.knows, tiny.person, Direction::kIn);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Version v = g.CurrentVersion();
      uint32_t out_deg = g.Degree(tiny.knows_out, tiny.persons[0], v);
      uint32_t in_deg = g.Degree(knows_in, tiny.persons[3], v);
      // Writer adds p0->p3 and p3->p0 in one transaction: at any snapshot,
      // p0's extra out-degree == p3's extra in-degree.
      if (out_deg - 2 != in_deg - 2) violations.fetch_add(1);
    }
  });

  for (int i = 0; i < 200; ++i) {
    auto txn = g.BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], i).ok());
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[3], tiny.persons[0], i).ok());
    txn->Commit();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(MvccTest, ConcurrentWritersAllCommit) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&g, &tiny, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        VertexId a = tiny.persons[t % 4];
        VertexId b = tiny.persons[(t + 1) % 4];
        auto txn = g.BeginWrite({a, b});
        ASSERT_TRUE(txn->AddEdge(tiny.knows, a, b, i).ok());
        txn->Commit();
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(g.CurrentVersion(), uint64_t{kThreads * kTxnsPerThread});
  // Total knows out-degree grew by exactly the number of inserted edges.
  Version v = g.CurrentVersion();
  uint32_t total = 0;
  for (VertexId p : tiny.persons) total += g.Degree(tiny.knows_out, p, v);
  EXPECT_EQ(total, 8u + kThreads * kTxnsPerThread);
}

TEST(MvccTest, VersionCounterMonotoneUnderContention) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  std::atomic<bool> stop{false};
  std::atomic<int> regressions{0};
  std::thread watcher([&] {
    Version last = 0;
    while (!stop.load()) {
      Version v = g.CurrentVersion();
      if (v < last) regressions.fetch_add(1);
      last = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&g, &tiny, t] {
      for (int i = 0; i < 100; ++i) {
        auto txn = g.BeginWrite({tiny.persons[t]});
        txn->SetProperty(tiny.persons[t], tiny.id, Value::Int(i));
        txn->Commit();
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  watcher.join();
  EXPECT_EQ(regressions.load(), 0);
}

// Snapshot isolation observed through the service layer: two client
// sessions pin different versions across an IU-style commit; the session on
// the old snapshot keeps reading the pre-commit adjacency (AdjOverlay::Find
// resolving to the base run) until it explicitly refreshes.
TEST(MvccServiceTest, SessionsPinSnapshotsAcrossCommit) {
  // Local fixture: this test mutates the graph, so it must not share the
  // process-wide one with read-comparison tests.
  testutil::SnbFixture fx;
  LdbcContext ldbc = LdbcContext::Resolve(fx.graph, fx.data.schema);
  service::ServiceConfig config;
  config.query_workers = 2;
  service::Server server(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  service::Client a_client;
  ASSERT_TRUE(a_client.Connect("127.0.0.1", server.port()));
  Version v0 = a_client.snapshot();
  ASSERT_EQ(v0, fx.graph.CurrentVersion());

  // Person `a` and a person `b` it does not yet know.
  VertexId a = fx.data.persons[0];
  AdjSpan before = fx.graph.Neighbors(ldbc.knows, a, v0);
  VertexId b = kInvalidVertex;
  for (VertexId cand : fx.data.persons) {
    if (cand == a) continue;
    bool adjacent = false;
    for (uint32_t i = 0; i < before.size; ++i) {
      if (before.ids[i] == cand) adjacent = true;
    }
    if (!adjacent) {
      b = cand;
      break;
    }
  }
  ASSERT_NE(b, kInvalidVertex);

  LdbcParams p{};
  p.person = fx.graph.GetProperty(a, ldbc.p_id, v0).AsInt();
  service::QueryResponse resp;
  ASSERT_TRUE(a_client.RunIS(3, p, &resp));
  ASSERT_EQ(resp.status, service::WireStatus::kOk);
  auto friends_v0 = testutil::SortedRows(resp.table);
  ASSERT_EQ(friends_v0.size(), static_cast<size_t>(before.size));

  // A direct writer commits the friendship while both sessions exist.
  {
    auto txn = fx.graph.BeginWrite({a, b});
    ASSERT_TRUE(txn->AddEdge(fx.data.schema.knows, a, b, 12345).ok());
    ASSERT_TRUE(txn->AddEdge(fx.data.schema.knows, b, a, 12345).ok());
    ASSERT_GT(txn->Commit(), v0);
  }

  // A fresh session pins the post-commit version and sees the new friend.
  service::Client b_client;
  ASSERT_TRUE(b_client.Connect("127.0.0.1", server.port()));
  ASSERT_GT(b_client.snapshot(), v0);
  ASSERT_TRUE(b_client.RunIS(3, p, &resp));
  ASSERT_EQ(resp.status, service::WireStatus::kOk);
  auto friends_v1 = testutil::SortedRows(resp.table);
  EXPECT_EQ(friends_v1.size(), friends_v0.size() + 1);

  // The old session still reads its pinned snapshot...
  ASSERT_TRUE(a_client.RunIS(3, p, &resp));
  ASSERT_EQ(resp.status, service::WireStatus::kOk);
  EXPECT_EQ(testutil::SortedRows(resp.table), friends_v0);
  // ...and the storage layer agrees: the overlay resolves the old version
  // to the pre-commit adjacency run.
  EXPECT_EQ(fx.graph.Neighbors(ldbc.knows, a, v0).size, before.size);
  EXPECT_EQ(fx.graph.Neighbors(ldbc.knows, a, fx.graph.CurrentVersion()).size,
            before.size + 1);

  // Refresh re-pins the session; it now matches the fresh one.
  uint64_t refreshed = 0;
  ASSERT_TRUE(a_client.RefreshSnapshot(&refreshed));
  EXPECT_GT(refreshed, v0);
  ASSERT_TRUE(a_client.RunIS(3, p, &resp));
  ASSERT_EQ(resp.status, service::WireStatus::kOk);
  EXPECT_EQ(testutil::SortedRows(resp.table), friends_v1);

  server.Drain(1.0);
}

}  // namespace
}  // namespace ges
