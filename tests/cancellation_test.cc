// Cooperative cancellation and deadlines: QueryContext semantics, the
// engine's checkpoint plumbing (ParallelFor morsels, Expand rows), and the
// service-level acceptance case — a deliberately slow IC5-class expansion
// returns DEADLINE_EXCEEDED within 2x its deadline while concurrent short
// queries keep completing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "runtime/query_context.h"
#include "runtime/scheduler.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using service::Client;
using service::QueryRequest;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

TEST(QueryContextTest, FreshContextIsClean) {
  QueryContext ctx;
  EXPECT_EQ(ctx.Check(), InterruptReason::kNone);
  EXPECT_FALSE(ctx.has_deadline());
  ThrowIfInterrupted(&ctx);       // no-op
  ThrowIfInterrupted(nullptr);    // nullptr contexts are always fine
}

TEST(QueryContextTest, ExpiredDeadlineTripsCheck) {
  QueryContext ctx;
  ctx.SetDeadline(-0.001);  // already in the past
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_EQ(ctx.Check(), InterruptReason::kDeadlineExceeded);
  bool threw = false;
  try {
    ThrowIfInterrupted(&ctx);
  } catch (const QueryInterrupted& e) {
    threw = true;
    EXPECT_EQ(e.reason, InterruptReason::kDeadlineExceeded);
  }
  EXPECT_TRUE(threw);
}

TEST(QueryContextTest, CancelWinsOverDeadline) {
  QueryContext ctx;
  ctx.SetDeadline(-0.001);
  ctx.Cancel();
  EXPECT_EQ(ctx.Check(), InterruptReason::kCancelled);
}

TEST(QueryContextTest, FutureDeadlineExpiresOnTime) {
  QueryContext ctx;
  ctx.SetDeadline(0.05);
  EXPECT_EQ(ctx.Check(), InterruptReason::kNone);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(ctx.Check(), InterruptReason::kDeadlineExceeded);
}

TEST(ParallelForCancellationTest, PreCancelledContextThrows) {
  TaskScheduler sched(2);
  QueryContext ctx;
  ctx.Cancel();
  std::atomic<int> executed{0};
  bool threw = false;
  try {
    sched.ParallelFor(0, 1000, 16, /*max_workers=*/2,
                      [&](size_t, size_t) { ++executed; }, &ctx);
  } catch (const QueryInterrupted& e) {
    threw = true;
    EXPECT_EQ(e.reason, InterruptReason::kCancelled);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(executed.load(), 0) << "no morsel should start when cancelled";
}

TEST(ParallelForCancellationTest, MidRunCancelStopsEarly) {
  TaskScheduler sched(2);
  QueryContext ctx;
  std::atomic<int> executed{0};
  bool threw = false;
  try {
    sched.ParallelFor(
        0, 10000, 1, /*max_workers=*/2,
        [&](size_t begin, size_t) {
          if (begin == 0) ctx.Cancel();  // first morsel trips the context
          ++executed;
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        },
        &ctx);
  } catch (const QueryInterrupted&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_LT(executed.load(), 10000) << "cancel must cut the loop short";
}

// The deadline tests need a query that genuinely outlasts its deadline.
// On the default sf=0.01 fixture the knows graph is so small that the
// stress BFS saturates in ~35 ms, so they use a larger graph (still ~100 ms
// to generate) where the same plan runs for several hundred milliseconds.
testutil::SnbFixture& StressFixture() {
  static testutil::SnbFixture* fx = new testutil::SnbFixture(0.05, 42);
  return *fx;
}

// Engine-level deadline: run the stress plan directly through the Executor
// with an armed context and verify it comes back as DEADLINE_EXCEEDED well
// inside the 2x-deadline acceptance bound.
TEST(EngineDeadlineTest, StressExpandHonorsDeadline) {
  testutil::SnbFixture& fx = StressFixture();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  Plan plan = service::BuildStressExpand(ctx, /*hops=*/4);

  // Baseline: without a deadline the plan must be slow enough that the
  // deadline below actually bites (otherwise the test proves nothing).
  constexpr double kDeadlineSeconds = 0.08;
  {
    Timer t;
    ExecOptions opts;
    opts.collect_stats = false;
    Executor exec(ExecMode::kFactorizedFused, opts);
    QueryResult r = exec.Run(plan, view);
    ASSERT_EQ(r.interrupted, InterruptReason::kNone);
    if (t.ElapsedSeconds() < 3 * kDeadlineSeconds) {
      GTEST_SKIP() << "stress plan too fast on this machine ("
                   << t.ElapsedMillis() << " ms) to exercise the deadline";
    }
  }

  QueryContext qctx;
  qctx.SetDeadline(kDeadlineSeconds);
  ExecOptions opts;
  opts.collect_stats = false;
  opts.intra_query_threads = 2;  // cover the morsel checkpoint path too
  opts.context = &qctx;
  Executor exec(ExecMode::kFactorizedFused, opts);
  Timer t;
  QueryResult r = exec.Run(plan, view);
  double elapsed = t.ElapsedSeconds();
  EXPECT_EQ(r.interrupted, InterruptReason::kDeadlineExceeded);
  EXPECT_EQ(r.table.NumRows(), 0u);
  EXPECT_LT(elapsed, 2 * kDeadlineSeconds)
      << "interrupted " << elapsed * 1000 << " ms after start for a "
      << kDeadlineSeconds * 1000 << " ms deadline";
}

std::unique_ptr<Server> StartServer(ServiceConfig config = {}) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = std::make_unique<Server>(&fx.graph, &fx.data, config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

// The acceptance scenario end to end: a slow IC5-class expansion with a
// deadline is interrupted on time, while a second session's short reads
// all complete during the interruption window.
TEST(ServiceDeadlineTest, SlowQueryInterruptedWhileShortsComplete) {
  testutil::SnbFixture& fx = StressFixture();
  ServiceConfig config;
  config.query_workers = 2;  // slow + shorts run concurrently
  service::Server server_obj(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server_obj.Start(&error)) << error;
  Server* server = &server_obj;

  constexpr uint32_t kDeadlineMs = 150;
  std::atomic<bool> slow_done{false};

  std::thread slow_thread([&] {
    Client slow;
    ASSERT_TRUE(slow.Connect("127.0.0.1", server->port()));
    QueryRequest req;
    req.query_id = slow.AllocQueryId();
    req.kind = service::QueryKind::kStress;
    req.number = 6;  // deep expansion: far beyond the deadline
    req.deadline_ms = kDeadlineMs;
    QueryResponse resp;
    Timer t;
    ASSERT_TRUE(slow.Run(req, &resp)) << slow.last_error();
    double elapsed_ms = t.ElapsedMillis();
    slow_done.store(true);
    EXPECT_EQ(resp.status, WireStatus::kDeadlineExceeded)
        << service::WireStatusName(resp.status) << ": " << resp.message;
    EXPECT_LT(elapsed_ms, 2.0 * kDeadlineMs);
  });

  // Short queries on a separate session must keep flowing while the slow
  // query burns its worker.
  Client shorts;
  ASSERT_TRUE(shorts.Connect("127.0.0.1", server->port()));
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/77);
  int completed = 0;
  while (!slow_done.load()) {
    QueryResponse resp;
    ASSERT_TRUE(shorts.RunIS(2, gen.Next(), &resp));
    ASSERT_EQ(resp.status, WireStatus::kOk);
    ++completed;
  }
  slow_thread.join();
  EXPECT_GT(completed, 0) << "shorts must complete during the slow query";
  EXPECT_GE(server->stats().queries_interrupted.load(), 1u);
}

// Explicit kCancel frame: a no-deadline stress query is cancelled
// mid-flight and its own response reports CANCELLED.
TEST(ServiceCancelTest, CancelFrameInterruptsInflightQuery) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  QueryRequest req;
  req.query_id = client.AllocQueryId();
  req.kind = service::QueryKind::kSleep;
  req.seed = 2000;  // ms: would dominate the test without the cancel
  ASSERT_TRUE(client.Send(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.Cancel(req.query_id));

  QueryResponse resp;
  Timer t;
  ASSERT_TRUE(client.ReadResponse(&resp)) << client.last_error();
  EXPECT_EQ(resp.query_id, req.query_id);
  EXPECT_EQ(resp.status, WireStatus::kCancelled);
  EXPECT_LT(t.ElapsedMillis(), 1500.0) << "cancel must cut the sleep short";
}

// Disconnecting a session cancels its in-flight queries so workers are not
// stuck running for a client that will never read the result.
TEST(ServiceCancelTest, DisconnectCancelsInflightQueries) {
  ServiceConfig config;
  config.query_workers = 1;
  auto server = StartServer(config);
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
    QueryRequest req;
    req.query_id = client.AllocQueryId();
    req.kind = service::QueryKind::kSleep;
    req.seed = 3000;  // ms
    ASSERT_TRUE(client.Send(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Client destructor closes the socket with the sleep still running.
  }
  // The lone worker must come free well before the sleep would finish.
  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server->port()));
  QueryResponse resp;
  Timer t;
  ASSERT_TRUE(probe.RunIS(2, ParamGen(&testutil::SnbFixture::Shared().graph,
                                      &testutil::SnbFixture::Shared().data, 5)
                                 .Next(),
                          &resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_LT(t.ElapsedMillis(), 2000.0)
      << "disconnect must cancel the orphaned sleep";
}

}  // namespace
}  // namespace ges
