// Expression tree construction, binding and evaluation tests.
#include "executor/expression.h"

#include <gtest/gtest.h>

namespace ges {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.Add("a", ValueType::kInt64);
  s.Add("b", ValueType::kString);
  return s;
}

Value EvalOn(const ExprPtr& e, const Schema& s, std::vector<Value> row) {
  return BoundExpr::Bind(*e, s).EvalRow(row);
}

TEST(ExprTest, Comparisons) {
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Int(5), Value::String("x")};
  EXPECT_TRUE(EvalOn(Expr::Eq(Expr::Col("a"), Expr::Lit(Value::Int(5))), s,
                     row)
                  .AsBool());
  EXPECT_FALSE(EvalOn(Expr::Ne(Expr::Col("a"), Expr::Lit(Value::Int(5))), s,
                      row)
                   .AsBool());
  EXPECT_TRUE(EvalOn(Expr::Lt(Expr::Col("a"), Expr::Lit(Value::Int(6))), s,
                     row)
                  .AsBool());
  EXPECT_TRUE(EvalOn(Expr::Le(Expr::Col("a"), Expr::Lit(Value::Int(5))), s,
                     row)
                  .AsBool());
  EXPECT_FALSE(EvalOn(Expr::Gt(Expr::Col("a"), Expr::Lit(Value::Int(5))), s,
                      row)
                   .AsBool());
  EXPECT_TRUE(EvalOn(Expr::Ge(Expr::Col("a"), Expr::Lit(Value::Int(5))), s,
                     row)
                  .AsBool());
}

TEST(ExprTest, Logical) {
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Int(5), Value::String("x")};
  auto t = Expr::Lit(Value::Bool(true));
  auto f = Expr::Lit(Value::Bool(false));
  EXPECT_TRUE(EvalOn(Expr::And(t, t), s, row).AsBool());
  EXPECT_FALSE(EvalOn(Expr::And(t, f), s, row).AsBool());
  EXPECT_TRUE(EvalOn(Expr::Or(f, t), s, row).AsBool());
  EXPECT_FALSE(EvalOn(Expr::Or(f, f), s, row).AsBool());
  EXPECT_TRUE(EvalOn(Expr::Not(f), s, row).AsBool());
}

TEST(ExprTest, ArithmeticIntAndDouble) {
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Int(5), Value::String("x")};
  EXPECT_EQ(EvalOn(Expr::Add(Expr::Col("a"), Expr::Lit(Value::Int(3))), s,
                   row),
            Value::Int(8));
  EXPECT_EQ(EvalOn(Expr::Sub(Expr::Col("a"), Expr::Lit(Value::Int(3))), s,
                   row),
            Value::Int(2));
  EXPECT_EQ(EvalOn(Expr::Mul(Expr::Col("a"), Expr::Lit(Value::Int(3))), s,
                   row),
            Value::Int(15));
  Value d = EvalOn(Expr::Add(Expr::Col("a"), Expr::Lit(Value::Double(0.5))),
                   s, row);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 5.5);
}

TEST(ExprTest, InList) {
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Int(5), Value::String("x")};
  auto in = Expr::In(Expr::Col("a"),
                     {Value::Int(1), Value::Int(5), Value::Int(9)});
  EXPECT_TRUE(EvalOn(in, s, row).AsBool());
  auto not_in = Expr::In(Expr::Col("a"), {Value::Int(1)});
  EXPECT_FALSE(EvalOn(not_in, s, row).AsBool());
}

TEST(ExprTest, IsNullAndStartsWith) {
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Null(), Value::String("hello")};
  EXPECT_TRUE(EvalOn(Expr::IsNull(Expr::Col("a")), s, row).AsBool());
  EXPECT_FALSE(EvalOn(Expr::IsNull(Expr::Col("b")), s, row).AsBool());
  EXPECT_TRUE(EvalOn(Expr::StartsWith(Expr::Col("b"), "hel"), s, row)
                  .AsBool());
  EXPECT_FALSE(EvalOn(Expr::StartsWith(Expr::Col("b"), "help"), s, row)
                   .AsBool());
  EXPECT_FALSE(EvalOn(Expr::StartsWith(Expr::Col("b"), "hellothere"), s, row)
                   .AsBool());
}

TEST(ExprTest, CollectColumns) {
  auto e = Expr::And(Expr::Gt(Expr::Col("x"), Expr::Lit(Value::Int(1))),
                     Expr::Eq(Expr::Col("y"), Expr::Col("x")));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], "x");
  EXPECT_EQ(cols[1], "y");
  EXPECT_EQ(cols[2], "x");
}

TEST(ExprTest, NestedExpression) {
  // (a + 2) * 3 > 20 with a = 5 -> 21 > 20 -> true
  Schema s = TwoColSchema();
  std::vector<Value> row{Value::Int(5), Value::String("x")};
  auto e = Expr::Gt(
      Expr::Mul(Expr::Add(Expr::Col("a"), Expr::Lit(Value::Int(2))),
                Expr::Lit(Value::Int(3))),
      Expr::Lit(Value::Int(20)));
  EXPECT_TRUE(EvalOn(e, s, row).AsBool());
}

TEST(ExprTest, EvalWithCustomGetter) {
  auto e = Expr::Add(Expr::Col("a"), Expr::Col("a"));
  Schema s;
  s.Add("a", ValueType::kInt64);
  BoundExpr b = BoundExpr::Bind(*e, s);
  Value v = b.Eval([](int) { return Value::Int(21); });
  EXPECT_EQ(v, Value::Int(42));
}

}  // namespace
}  // namespace ges
