// Semantic tests of the LDBC query implementations: filters, ordering,
// limits, and the IC13/IC14 procedures, checked on the shared SNB fixture.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SnbFixture;

class LdbcSemanticsTest : public ::testing::Test {
 protected:
  LdbcSemanticsTest()
      : fx_(SnbFixture::Shared()),
        ctx_(LdbcContext::Resolve(fx_.graph, fx_.data.schema)),
        gen_(&fx_.graph, &fx_.data, 4242),
        exec_(ExecMode::kFactorizedFused),
        view_(&fx_.graph) {}

  QueryResult RunIC(int k, const LdbcParams& p) {
    return exec_.Run(BuildIC(k, ctx_, p), view_);
  }
  QueryResult RunIS(int k, const LdbcParams& p) {
    return exec_.Run(BuildIS(k, ctx_, p), view_);
  }

  // First params (among `tries`) for which query k returns rows.
  bool FindNonEmpty(int k, LdbcParams* out, QueryResult* result,
                    int tries = 20) {
    for (int i = 0; i < tries; ++i) {
      LdbcParams p = gen_.Next();
      QueryResult r = RunIC(k, p);
      if (r.table.NumRows() > 0) {
        *out = p;
        *result = std::move(r);
        return true;
      }
    }
    return false;
  }

  SnbFixture& fx_;
  LdbcContext ctx_;
  ParamGen gen_;
  Executor exec_;
  GraphView view_;
};

TEST_F(LdbcSemanticsTest, IC1MatchesFirstNameAndOrdersByDistance) {
  LdbcParams p;
  QueryResult r;
  ASSERT_TRUE(FindNonEmpty(1, &p, &r));
  // Output: f_id, f_last, dist, f_birthday — verify distances ascending
  // and bounded by 3, and every friend really has the requested name.
  int64_t last_dist = 0;
  for (const auto& row : r.table.rows()) {
    int64_t dist = row[2].AsInt();
    EXPECT_GE(dist, last_dist);
    EXPECT_GE(dist, 1);
    EXPECT_LE(dist, 3);
    last_dist = dist;
    VertexId f = fx_.graph.FindByExtId(ctx_.s.person, row[0].AsInt(),
                                       view_.version());
    EXPECT_EQ(view_.Property(f, ctx_.s.first_name).AsString(), p.first_name);
  }
  EXPECT_LE(r.table.NumRows(), 20u);
}

TEST_F(LdbcSemanticsTest, IC2RespectsDateBoundAndOrder) {
  LdbcParams p;
  QueryResult r;
  ASSERT_TRUE(FindNonEmpty(2, &p, &r));
  int64_t prev = INT64_MAX;
  for (const auto& row : r.table.rows()) {
    int64_t date = row[2].AsInt();  // m_date
    EXPECT_LE(date, p.max_date);
    EXPECT_LE(date, prev) << "must be ordered newest-first";
    prev = date;
  }
  EXPECT_LE(r.table.NumRows(), 20u);
}

TEST_F(LdbcSemanticsTest, IC3BothCountsPositive) {
  LdbcParams p;
  QueryResult r;
  if (!FindNonEmpty(3, &p, &r, 40)) GTEST_SKIP() << "no IC3 hits at SF0.01";
  for (const auto& row : r.table.rows()) {
    EXPECT_GT(row[1].AsInt(), 0);  // cnt_x
    EXPECT_GT(row[2].AsInt(), 0);  // cnt_y
    EXPECT_EQ(row[3].AsInt(), row[1].AsInt() + row[2].AsInt());
  }
}

TEST_F(LdbcSemanticsTest, IC4CountsDescending) {
  LdbcParams p;
  QueryResult r;
  ASSERT_TRUE(FindNonEmpty(4, &p, &r));
  int64_t prev = INT64_MAX;
  for (const auto& row : r.table.rows()) {
    EXPECT_LE(row[1].AsInt(), prev);
    prev = row[1].AsInt();
  }
  EXPECT_LE(r.table.NumRows(), 10u);
}

TEST_F(LdbcSemanticsTest, IC5ForumCountsDescending) {
  LdbcParams p;
  QueryResult r;
  ASSERT_TRUE(FindNonEmpty(5, &p, &r));
  int64_t prev = INT64_MAX;
  for (const auto& row : r.table.rows()) {
    EXPECT_GT(row[1].AsInt(), 0);
    EXPECT_LE(row[1].AsInt(), prev);
    prev = row[1].AsInt();
  }
  EXPECT_LE(r.table.NumRows(), 20u);
}

TEST_F(LdbcSemanticsTest, IC6ExcludesTheGivenTag) {
  LdbcParams p;
  QueryResult r;
  if (!FindNonEmpty(6, &p, &r, 40)) GTEST_SKIP() << "no IC6 hits at SF0.01";
  for (const auto& row : r.table.rows()) {
    EXPECT_NE(row[0].AsString(), p.tag_name);
  }
}

TEST_F(LdbcSemanticsTest, IC9StrictDateUpperBound) {
  LdbcParams p;
  QueryResult r;
  ASSERT_TRUE(FindNonEmpty(9, &p, &r));
  for (const auto& row : r.table.rows()) {
    EXPECT_LT(row[2].AsInt(), p.max_date);
  }
}

TEST_F(LdbcSemanticsTest, IC10MonthFilterHolds) {
  LdbcParams p;
  QueryResult r;
  if (!FindNonEmpty(10, &p, &r, 60)) GTEST_SKIP() << "no IC10 hits";
  for (const auto& row : r.table.rows()) {
    VertexId fof = fx_.graph.FindByExtId(ctx_.s.person, row[0].AsInt(),
                                         view_.version());
    EXPECT_EQ(view_.Property(fof, ctx_.s.birthday_month).AsInt(), p.month);
  }
}

TEST_F(LdbcSemanticsTest, IC11WorkYearBound) {
  LdbcParams p;
  QueryResult r;
  if (!FindNonEmpty(11, &p, &r, 40)) GTEST_SKIP() << "no IC11 hits";
  for (const auto& row : r.table.rows()) {
    EXPECT_LT(row[2].AsInt(), p.work_year);  // workFrom
  }
}

TEST_F(LdbcSemanticsTest, IC13FindsSymmetricDistances) {
  LdbcParams p = gen_.Next();
  QueryResult r = RunIC(13, p);
  ASSERT_EQ(r.table.NumRows(), 1u);
  int64_t d = r.table.At(0, 0).AsInt();
  EXPECT_GE(d, -1);
  // Distance is symmetric.
  std::swap(p.person, p.person2);
  QueryResult rev = RunIC(13, p);
  EXPECT_EQ(rev.table.At(0, 0).AsInt(), d);
}

TEST_F(LdbcSemanticsTest, IC13SamePersonIsZero) {
  LdbcParams p = gen_.Next();
  p.person2 = p.person;
  QueryResult r = RunIC(13, p);
  EXPECT_EQ(r.table.At(0, 0).AsInt(), 0);
}

TEST_F(LdbcSemanticsTest, IC14PathsMatchIC13Length) {
  for (int i = 0; i < 20; ++i) {
    LdbcParams p = gen_.Next();
    QueryResult d13 = RunIC(13, p);
    QueryResult d14 = RunIC(14, p);
    int64_t dist = d13.table.At(0, 0).AsInt();
    if (dist < 0) {
      EXPECT_EQ(d14.table.NumRows(), 0u);
      continue;
    }
    ASSERT_GT(d14.table.NumRows(), 0u);
    double prev = 1e300;
    for (const auto& row : d14.table.rows()) {
      EXPECT_EQ(row[1].AsInt(), dist) << "all paths are shortest paths";
      EXPECT_LE(row[0].AsDouble(), prev) << "weights descending";
      prev = row[0].AsDouble();
    }
    return;  // one reachable pair checked is enough
  }
  GTEST_SKIP() << "no reachable pair sampled";
}

TEST_F(LdbcSemanticsTest, IS1ReturnsTheProfile) {
  LdbcParams p = gen_.Next();
  QueryResult r = RunIS(1, p);
  ASSERT_EQ(r.table.NumRows(), 1u);
  VertexId v =
      fx_.graph.FindByExtId(ctx_.s.person, p.person, view_.version());
  EXPECT_EQ(r.table.At(0, 0).AsString(),
            view_.Property(v, ctx_.s.first_name).AsString());
}

TEST_F(LdbcSemanticsTest, IS2LimitsToTenNewestFirst) {
  LdbcParams p = gen_.Next();
  QueryResult r = RunIS(2, p);
  EXPECT_LE(r.table.NumRows(), 10u);
  int64_t prev = INT64_MAX;
  for (const auto& row : r.table.rows()) {
    EXPECT_LE(row[2].AsInt(), prev);
    prev = row[2].AsInt();
  }
}

TEST_F(LdbcSemanticsTest, IS5ReturnsExactlyOneCreator) {
  LdbcParams p = gen_.Next();
  QueryResult r = RunIS(5, p);
  EXPECT_EQ(r.table.NumRows(), 1u);
}

// --- update queries: each IU leaves the graph consistent ---

TEST(LdbcUpdateTest, AllUpdatesCommitAndReadBack) {
  testutil::SnbFixture fx(0.01, 31);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ParamGen params(&fx.graph, &fx.data, 8);
  Version v0 = fx.graph.CurrentVersion();
  for (int k = 1; k <= 8; ++k) {
    Version v = RunIU(k, ctx, &fx.graph, &params, 1000 + k);
    EXPECT_EQ(v, v0 + k) << "IU" << k;
  }
  // IU1 created a person with the expected external id.
  GraphView view(&fx.graph);
  VertexId nv = view.FindByExtId(ctx.s.person, fx.data.next_person_ext);
  ASSERT_NE(nv, kInvalidVertex);
  EXPECT_EQ(view.Property(nv, ctx.s.first_name).AsString(), "New");
  // IU8 added a symmetric friendship visible in the new snapshot: verify
  // the version advanced and queries still run.
  Executor exec(ExecMode::kFactorizedFused);
  LdbcParams p = params.Next();
  QueryResult r = exec.Run(BuildIC(1, ctx, p), view);
  EXPECT_LE(r.table.NumRows(), 20u);
}

TEST(LdbcUpdateTest, ReadersUnaffectedWhileUpdatesStream) {
  testutil::SnbFixture fx(0.01, 77);
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ParamGen params(&fx.graph, &fx.data, 5);
  Executor exec(ExecMode::kFactorizedFused);
  LdbcParams p = params.Next();
  Plan plan = BuildIC(2, ctx, p);

  GraphView before(&fx.graph);
  auto rows_before = testutil::OrderedRows(exec.Run(plan, before).table);
  for (int i = 0; i < 10; ++i) {
    RunIU(2 + i % 7, ctx, &fx.graph, &params, 50 + i);
  }
  // Old snapshot still sees the old answer.
  auto rows_after = testutil::OrderedRows(exec.Run(plan, before).table);
  EXPECT_EQ(rows_before, rows_after);
}

}  // namespace
}  // namespace ges
