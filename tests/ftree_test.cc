// f-Tree structure tests: enumeration, counting DP, selection semantics,
// constant-delay property.
#include "executor/ftree.h"

#include <gtest/gtest.h>

#include "executor/flatblock.h"

namespace ges {
namespace {

// Builds the paper's Figure 7 tree:
//   root r: pId = [p1, p2]
//   child u: (comId, comLen) = [(c1,6), (c2,3), (c3,5), (c4,9)],
//            sel = [1,0,1,0], ranges: p1->[0,2), p2->[2,4)
//   child v: (postId, postLen) = [(m1,140), (m2,123), (m3,120)],
//            ranges: p1->[0,1), p2->[1,3)
class Figure7Tree : public ::testing::Test {
 protected:
  void SetUp() override {
    FTreeNode* r = tree_.CreateRoot();
    ValueVector pid(ValueType::kInt64);
    pid.AppendInt(1);
    pid.AppendInt(2);
    r->block.AddColumn("pId", std::move(pid));
    tree_.RegisterColumns(r);

    FTreeNode* u = tree_.AddChild(r);
    ValueVector com_id(ValueType::kInt64);
    ValueVector com_len(ValueType::kInt64);
    for (int i = 1; i <= 4; ++i) com_id.AppendInt(i);
    for (int l : {6, 3, 5, 9}) com_len.AppendInt(l);
    u->block.AddColumn("comId", std::move(com_id));
    u->block.AppendAlignedColumn("comLen", std::move(com_len));
    u->parent_index = {{0, 2}, {2, 4}};
    u->MutableSel() = {1, 0, 1, 0};
    tree_.RegisterColumns(u);

    FTreeNode* v = tree_.AddChild(r);
    ValueVector post_id(ValueType::kInt64);
    ValueVector post_len(ValueType::kInt64);
    for (int i = 1; i <= 3; ++i) post_id.AppendInt(i);
    for (int l : {140, 123, 120}) post_len.AppendInt(l);
    v->block.AddColumn("postId", std::move(post_id));
    v->block.AppendAlignedColumn("postLen", std::move(post_len));
    v->parent_index = {{0, 1}, {1, 3}};
    tree_.RegisterColumns(v);
  }

  FTree tree_;
};

TEST_F(Figure7Tree, CountTuplesMatchesPaper) {
  // R^1_r = {p1} x {c1} x {m1} = 1 tuple
  // R^2_r = {p2} x {c3} x {m2, m3} = 2 tuples
  EXPECT_EQ(tree_.CountTuples(), 3u);
}

TEST_F(Figure7Tree, FlattenProducesPaperTuples) {
  FlatBlock out;
  Schema s;
  for (const char* c : {"pId", "comId", "comLen", "postId", "postLen"}) {
    s.Add(c, ValueType::kInt64);
  }
  out = FlatBlock(s);
  tree_.Flatten({"pId", "comId", "comLen", "postId", "postLen"}, &out);
  ASSERT_EQ(out.NumRows(), 3u);
  // {p1, c1, 6, m1, 140}
  EXPECT_EQ(out.At(0, 0).AsInt(), 1);
  EXPECT_EQ(out.At(0, 1).AsInt(), 1);
  EXPECT_EQ(out.At(0, 2).AsInt(), 6);
  EXPECT_EQ(out.At(0, 3).AsInt(), 1);
  EXPECT_EQ(out.At(0, 4).AsInt(), 140);
  // {p2, c3, 5, m2, 123}
  EXPECT_EQ(out.At(1, 0).AsInt(), 2);
  EXPECT_EQ(out.At(1, 1).AsInt(), 3);
  EXPECT_EQ(out.At(1, 4).AsInt(), 123);
  // {p2, c3, 5, m3, 120}
  EXPECT_EQ(out.At(2, 3).AsInt(), 3);
  EXPECT_EQ(out.At(2, 4).AsInt(), 120);
}

TEST_F(Figure7Tree, FlattenHonorsLimit) {
  Schema s;
  s.Add("pId", ValueType::kInt64);
  FlatBlock out(s);
  tree_.Flatten({"pId"}, &out, 2);
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST_F(Figure7Tree, TupleCountsForLeafNode) {
  // Multiplicities of v's rows: m1 used once (under p1/c1); m2, m3 once
  // each (under p2/c3).
  const FTreeNode* v = tree_.NodeOfColumn("postId");
  std::vector<uint64_t> counts = tree_.TupleCountsForNode(v);
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 1, 1}));
}

TEST_F(Figure7Tree, TupleCountsForRoot) {
  const FTreeNode* r = tree_.NodeOfColumn("pId");
  std::vector<uint64_t> counts = tree_.TupleCountsForNode(r);
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 2}));
}

TEST_F(Figure7Tree, SelectionInvalidatesSubtreeTuples) {
  // Invalidate p2: only the single p1 tuple remains.
  FTreeNode* r = tree_.NodeOfColumn("pId");
  r->MutableSel()[1] = 0;
  EXPECT_EQ(tree_.CountTuples(), 1u);
}

TEST_F(Figure7Tree, EmptyChildRangeDropsParentRow) {
  // Invalidate every comment of p1: p1 has zero tuples (Cartesian product
  // with the empty set), leaving only p2's two tuples.
  FTreeNode* u = tree_.NodeOfColumn("comId");
  u->MutableSel()[0] = 0;
  EXPECT_EQ(tree_.CountTuples(), 2u);
}

TEST_F(Figure7Tree, EnumeratorVisitsEachTupleOnce) {
  TupleEnumerator e(tree_);
  int n = 0;
  while (e.Next()) ++n;
  EXPECT_EQ(n, 3);
  EXPECT_FALSE(e.Next());  // stays exhausted
}

TEST(FTreeEdge, SingleNodeTree) {
  FTree tree;
  FTreeNode* r = tree.CreateRoot();
  ValueVector ids(ValueType::kInt64);
  for (int i = 0; i < 5; ++i) ids.AppendInt(i);
  r->block.AddColumn("x", std::move(ids));
  tree.RegisterColumns(r);
  EXPECT_EQ(tree.CountTuples(), 5u);
  r->MutableSel() = {1, 0, 1, 0, 1};
  EXPECT_EQ(tree.CountTuples(), 3u);
}

TEST(FTreeEdge, EmptyRootEncodesNothing) {
  FTree tree;
  FTreeNode* r = tree.CreateRoot();
  ValueVector ids(ValueType::kInt64);
  r->block.AddColumn("x", std::move(ids));
  tree.RegisterColumns(r);
  EXPECT_EQ(tree.CountTuples(), 0u);
  TupleEnumerator e(tree);
  EXPECT_FALSE(e.Next());
}

TEST(FTreeEdge, DeepChain) {
  // Chain of 4 nodes, each row mapping to 2 child rows: 1*2*2*2 = 8 tuples
  // from a single root row.
  FTree tree;
  FTreeNode* prev = tree.CreateRoot();
  {
    ValueVector ids(ValueType::kInt64);
    ids.AppendInt(0);
    prev->block.AddColumn("c0", std::move(ids));
    tree.RegisterColumns(prev);
  }
  size_t prev_rows = 1;
  for (int depth = 1; depth <= 3; ++depth) {
    FTreeNode* child = tree.AddChild(prev);
    size_t rows = prev_rows * 2;
    ValueVector ids(ValueType::kInt64);
    for (size_t i = 0; i < rows; ++i) ids.AppendInt(static_cast<int>(i));
    child->block.AddColumn("c" + std::to_string(depth), std::move(ids));
    child->parent_index.resize(prev_rows);
    for (size_t i = 0; i < prev_rows; ++i) {
      child->parent_index[i] = IndexRange{2 * i, 2 * i + 2};
    }
    tree.RegisterColumns(child);
    prev = child;
    prev_rows = rows;
  }
  EXPECT_EQ(tree.CountTuples(), 8u);
  TupleEnumerator e(tree);
  int n = 0;
  while (e.Next()) ++n;
  EXPECT_EQ(n, 8);
}

// Constant-delay enumeration (Lemma 4.4): the per-tuple work of Flatten is
// bounded by the schema size, independent of tuple count. We check the
// weaker observable property that flattening N tuples touches exactly N
// rows and visited cells scale linearly.
TEST(FTreeProperty, EnumerationLinearInOutput) {
  for (int width : {2, 8, 32, 128}) {
    FTree tree;
    FTreeNode* r = tree.CreateRoot();
    ValueVector ids(ValueType::kInt64);
    ids.AppendInt(0);
    r->block.AddColumn("root", std::move(ids));
    tree.RegisterColumns(r);
    FTreeNode* child = tree.AddChild(r);
    ValueVector cids(ValueType::kInt64);
    for (int i = 0; i < width; ++i) cids.AppendInt(i);
    child->block.AddColumn("leaf", std::move(cids));
    child->parent_index = {{0, static_cast<uint64_t>(width)}};
    tree.RegisterColumns(child);

    EXPECT_EQ(tree.CountTuples(), static_cast<uint64_t>(width));
    Schema s;
    s.Add("root", ValueType::kInt64);
    s.Add("leaf", ValueType::kInt64);
    FlatBlock out(s);
    tree.Flatten({"root", "leaf"}, &out);
    EXPECT_EQ(out.NumRows(), static_cast<size_t>(width));
  }
}

}  // namespace
}  // namespace ges
