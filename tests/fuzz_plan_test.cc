// Randomized cross-engine equivalence: generate random (but well-formed)
// linear plans over the SNB graph and require all four engines to agree.
// This catches interactions the handwritten operator tests miss.
#include <gtest/gtest.h>

#include "common/random.h"
#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SnbFixture;
using testutil::SortedRows;

struct VertexColumn {
  std::string name;
  LabelId label;
};

// Schema-aware random plan generator: tracks bound vertex columns (with
// labels) and value columns so every generated op is well-formed.
class RandomPlanGenerator {
 public:
  RandomPlanGenerator(const SnbFixture& fx, const LdbcContext& ctx,
                      uint64_t seed)
      : fx_(fx), ctx_(ctx), rng_(seed) {}

  Plan Generate() {
    PlanBuilder b("fuzz");
    vertex_cols_.clear();
    int_cols_.clear();
    next_col_ = 0;

    // Leaf: scan a random label with interesting out-edges, or seek.
    const SnbSchema& s = ctx_.s;
    LabelId start_labels[] = {s.person, s.post, s.comment, s.forum, s.tag};
    LabelId label = start_labels[rng_.Uniform(5)];
    std::string col = NewCol("v");
    if (rng_.Bernoulli(0.5) && label == s.person) {
      b.NodeByIdSeek(col, label,
                     static_cast<int64_t>(
                         rng_.Uniform(fx_.data.persons.size())));
    } else {
      b.ScanByLabel(col, label);
    }
    vertex_cols_.push_back({col, label});

    int ops = 2 + static_cast<int>(rng_.Uniform(5));
    bool aggregated = false;
    int expands = 0;
    for (int i = 0; i < ops && !aggregated; ++i) {
      switch (rng_.Uniform(6)) {
        case 0:
        case 1:
          if (expands < 3) {
            AddExpand(&b);
            ++expands;
          }
          break;
        case 2:
          AddGetProperty(&b);
          break;
        case 3:
          AddFilter(&b);
          break;
        case 4:
          if (!int_cols_.empty() && rng_.Bernoulli(0.5)) {
            AddAggregate(&b);
            aggregated = true;
          } else {
            AddGetProperty(&b);
          }
          break;
        case 5:
          if (rng_.Bernoulli(0.3)) {
            b.Distinct();
          } else if (expands < 3) {
            AddExpand(&b);
            ++expands;
          }
          break;
      }
    }
    // Deterministic final order so row order is comparable, and an explicit
    // output column list (cross-engine column order is only defined for
    // explicit outputs; see plan.h).
    if (!aggregated) {
      AddGetProperty(&b);
      std::vector<SortKey> keys;
      std::vector<std::string> output;
      for (const std::string& c : int_cols_) {
        keys.push_back({c, true});
        output.push_back(c);
      }
      for (const VertexColumn& vc : vertex_cols_) {
        keys.push_back({vc.name, true});
        output.push_back(vc.name);
      }
      b.OrderBy(std::move(keys), 64);
      b.Output(std::move(output));
    } else {
      // Aggregate plans already project to {key, cnt}.
    }
    return b.Build();
  }

 private:
  std::string NewCol(const char* prefix) {
    return std::string(prefix) + std::to_string(next_col_++);
  }

  // Relations whose source label matches, picked from a fixed menu.
  struct RelChoice {
    RelationId rel;
    LabelId dst;
  };
  std::vector<RelChoice> RelationsFrom(LabelId label) {
    const SnbSchema& s = ctx_.s;
    std::vector<RelChoice> out;
    if (label == s.person) {
      out.push_back({ctx_.knows, s.person});
      out.push_back({ctx_.person_posts, s.post});
      out.push_back({ctx_.person_comments, s.comment});
      out.push_back({ctx_.person_interests, s.tag});
      out.push_back({ctx_.person_city, s.place});
      out.push_back({ctx_.person_member_of, s.forum});
    } else if (label == s.post) {
      out.push_back({ctx_.post_has_creator, s.person});
      out.push_back({ctx_.post_tags, s.tag});
      out.push_back({ctx_.post_replies, s.comment});
      out.push_back({ctx_.post_forum, s.forum});
    } else if (label == s.comment) {
      out.push_back({ctx_.comment_has_creator, s.person});
      out.push_back({ctx_.comment_reply_of_post, s.post});
    } else if (label == s.forum) {
      out.push_back({ctx_.forum_members, s.person});
      out.push_back({ctx_.forum_posts, s.post});
      out.push_back({ctx_.forum_moderator, s.person});
    } else if (label == s.tag) {
      out.push_back({ctx_.tag_class, s.tagclass});
      out.push_back({ctx_.tag_posts, s.post});
    }
    return out;
  }

  void AddExpand(PlanBuilder* b) {
    const VertexColumn& src = vertex_cols_[rng_.Uniform(vertex_cols_.size())];
    auto choices = RelationsFrom(src.label);
    if (choices.empty()) return;
    const RelChoice& c = choices[rng_.Uniform(choices.size())];
    std::string out = NewCol("v");
    bool multi = c.rel == ctx_.knows && rng_.Bernoulli(0.3);
    b->Expand(src.name, out, {c.rel}, 1, multi ? 2 : 1, multi, multi);
    vertex_cols_.push_back({out, c.dst});
    // Cyclic closing edges: semi/anti-join the fresh column against earlier
    // bound columns when a relation connects their labels — exactly the
    // Expand ; ExpandInto+ shape the WCOJ rewrite fuses in kFactorizedFused,
    // so fused runs take the IntersectExpand path while the other engines
    // execute the binary chain: a differential intersection test.
    if (!multi && rng_.Bernoulli(0.4)) {
      int closes = 1 + (rng_.Bernoulli(0.25) ? 1 : 0);
      for (int k = 0; k < closes; ++k) AddClosingEdge(b, out, c.dst);
    }
  }

  void AddClosingEdge(PlanBuilder* b, const std::string& w, LabelId wl) {
    struct Cand {
      const VertexColumn* col;
      RelChoice rc;
    };
    std::vector<Cand> cands;
    auto from_w = RelationsFrom(wl);
    for (const VertexColumn& vc : vertex_cols_) {
      if (vc.name == w) continue;
      for (const RelChoice& rc : from_w) {
        if (rc.dst == vc.label) cands.push_back({&vc, rc});
      }
    }
    if (cands.empty()) return;
    const Cand& cand = cands[rng_.Uniform(cands.size())];
    bool anti = rng_.Bernoulli(0.2);
    if (rng_.Bernoulli(0.5)) {
      b->ExpandInto(w, cand.col->name, {cand.rc.rel}, anti);  // edge w -> p
    } else {
      // Reverse orientation (edge p -> w) when p's label reaches w's.
      for (const RelChoice& pr : RelationsFrom(cand.col->label)) {
        if (pr.dst == wl) {
          b->ExpandInto(cand.col->name, w, {pr.rel}, anti);
          return;
        }
      }
      b->ExpandInto(w, cand.col->name, {cand.rc.rel}, anti);
    }
  }

  void AddGetProperty(PlanBuilder* b) {
    // Every label has an int64 "id" property.
    const VertexColumn& src = vertex_cols_[rng_.Uniform(vertex_cols_.size())];
    std::string out = NewCol("p");
    b->GetProperty(src.name, ctx_.p_id, ValueType::kInt64, out);
    int_cols_.push_back(out);
  }

  void AddFilter(PlanBuilder* b) {
    if (int_cols_.empty()) {
      AddGetProperty(b);
    }
    const std::string& col = int_cols_[rng_.Uniform(int_cols_.size())];
    int64_t bound = static_cast<int64_t>(rng_.Uniform(500));
    ExprPtr pred = rng_.Bernoulli(0.5)
                       ? Expr::Lt(Expr::Col(col), Expr::Lit(Value::Int(bound)))
                       : Expr::Ge(Expr::Col(col), Expr::Lit(Value::Int(bound)));
    b->Filter(std::move(pred));
  }

  void AddAggregate(PlanBuilder* b) {
    const std::string& key = int_cols_[rng_.Uniform(int_cols_.size())];
    b->Aggregate({key}, {AggSpec{AggSpec::kCount, "", "cnt"}});
    b->OrderBy({{key, true}}, 64);
  }

  const SnbFixture& fx_;
  const LdbcContext& ctx_;
  Rng rng_;
  std::vector<VertexColumn> vertex_cols_;
  std::vector<std::string> int_cols_;
  int next_col_ = 0;
};

class FuzzPlanTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPlanTest, EnginesAgreeOnRandomPlans) {
  SnbFixture& fx = SnbFixture::Shared();
  static LdbcContext* ctx =
      new LdbcContext(LdbcContext::Resolve(fx.graph, fx.data.schema));
  RandomPlanGenerator gen(fx, *ctx, 0xf022 + GetParam() * 131);
  GraphView view(&fx.graph);
  for (int i = 0; i < 3; ++i) {
    Plan plan = gen.Generate();
    QueryResult flat = Executor(ExecMode::kFlat).Run(plan, view);
    // Bound runaway cross products: the point is breadth of shapes, not
    // volume, and the Volcano engine is slow by design.
    if (flat.stats.peak_intermediate_bytes > (32u << 20)) continue;
    auto expected = SortedRows(flat.table);
    for (ExecMode mode : {ExecMode::kVolcano, ExecMode::kFactorized,
                          ExecMode::kFactorizedFused}) {
      QueryResult r = Executor(mode).Run(plan, view);
      EXPECT_EQ(SortedRows(r.table), expected)
          << "mode=" << ExecModeName(mode) << " seed=" << GetParam()
          << " plan#" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlanTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace ges
