// EXPLAIN / plan-validation tests, including validation of every workload
// query (fused and unfused).
#include "executor/explain.h"

#include <gtest/gtest.h>

#include "executor/optimizer.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

Plan SimplePlan(const TinyGraph& tiny) {
  PlanBuilder b("sample");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("p", "f", {tiny.knows_out}, 1, 2, true, true)
      .GetProperty("f", tiny.id, ValueType::kInt64, "fid")
      .Filter(Expr::Gt(Expr::Col("fid"), Expr::Lit(Value::Int(0))))
      .OrderBy({{"fid", true}}, 5)
      .Output({"fid"});
  return b.Build();
}

TEST(ExplainTest, RendersEveryOperator) {
  TinyGraph tiny;
  std::string text = ExplainPlan(SimplePlan(tiny));
  EXPECT_NE(text.find("NodeByIdSeek"), std::string::npos);
  EXPECT_NE(text.find("Expand"), std::string::npos);
  EXPECT_NE(text.find("(*1..2)"), std::string::npos);
  EXPECT_NE(text.find("GetProperty"), std::string::npos);
  EXPECT_NE(text.find("OrderBy"), std::string::npos);
  EXPECT_NE(text.find("limit=5"), std::string::npos);
  EXPECT_NE(text.find("output: [fid]"), std::string::npos);
  EXPECT_NE(text.find("[sample]"), std::string::npos);
}

TEST(ExplainTest, ShowsFusedOperators) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 3)
      .Expand("p", "m", {tiny.person_messages})
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(100))))
      .OrderBy({{"len", false}}, 3)
      .Output({"m", "len"});
  Plan fused = OptimizePlan(b.Build(), ExecOptions{});
  std::string text = ExplainPlan(fused);
  EXPECT_NE(text.find("ExpandFiltered"), std::string::npos);
  EXPECT_NE(text.find("TopK"), std::string::npos);
}

TEST(ValidateTest, AcceptsWellFormedPlan) {
  TinyGraph tiny;
  Status s = ValidatePlan(SimplePlan(tiny));
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST(ValidateTest, RejectsEmptyPlan) {
  EXPECT_FALSE(ValidatePlan(Plan{}).ok());
}

TEST(ValidateTest, RejectsNonLeafFirstOp) {
  Plan plan;
  PlanOp op;
  op.type = OpType::kFilter;
  op.predicate = Expr::Lit(Value::Bool(true));
  plan.ops.push_back(std::move(op));
  EXPECT_FALSE(ValidatePlan(plan).ok());
}

TEST(ValidateTest, RejectsUnknownConsumedColumn) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("nope", "f", {tiny.knows_out})
      .Output({"f"});
  Status s = ValidatePlan(b.Build());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(ValidateTest, RejectsDuplicateColumn) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .Expand("p", "p", {tiny.knows_out})  // shadows the seek column
      .Output({"p"});
  EXPECT_FALSE(ValidatePlan(b.Build()).ok());
}

TEST(ValidateTest, RejectsUnknownOutputColumn) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0).Output({"ghost"});
  EXPECT_FALSE(ValidatePlan(b.Build()).ok());
}

TEST(ValidateTest, RejectsUnknownSortKey) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0).OrderBy({{"ghost", true}}).Output({"p"});
  EXPECT_FALSE(ValidatePlan(b.Build()).ok());
}

TEST(ValidateTest, AggregationReplacesLiveColumns) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny.message)
      .GetProperty("m", tiny.len, ValueType::kInt64, "len")
      .Aggregate({"len"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      // "m" is gone after aggregation:
      .Filter(Expr::Gt(Expr::Col("m"), Expr::Lit(Value::Int(0))))
      .Output({"len"});
  EXPECT_FALSE(ValidatePlan(b.Build()).ok());
}

// Every workload query must validate, both raw and after fusion.
TEST(ValidateTest, AllWorkloadQueriesValidate) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ParamGen gen(&fx.graph, &fx.data, 1);
  LdbcParams p = gen.Next();
  for (int k = 1; k <= 14; ++k) {
    Plan plan = BuildIC(k, ctx, p);
    Status s = ValidatePlan(plan);
    EXPECT_TRUE(s.ok()) << "IC" << k << ": " << s.message();
    Status sf = ValidatePlan(OptimizePlan(plan, ExecOptions{}));
    EXPECT_TRUE(sf.ok()) << "IC" << k << " fused: " << sf.message();
  }
  for (int k = 1; k <= 7; ++k) {
    Plan plan = BuildIS(k, ctx, p);
    Status s = ValidatePlan(plan);
    EXPECT_TRUE(s.ok()) << "IS" << k << ": " << s.message();
  }
}

}  // namespace
}  // namespace ges
