// Harness tests: latency stats, workload mix, driver runs (including
// concurrent reads + updates).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "harness/driver.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "harness/workload.h"
#include "tests/test_util.h"

namespace ges {
namespace {

TEST(LatencyRecorderTest, BasicStats) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(i);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(rec.Min(), 1);
  EXPECT_DOUBLE_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(rec.Percentile(99), 99, 1.01);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 100);
  EXPECT_DOUBLE_EQ(rec.Percentile(0), 1);
}

TEST(LatencyRecorderTest, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2);
}

TEST(LatencyRecorderTest, EmptyRecorderIsZero) {
  // The empty-recorder contract (harness/stats.h): every statistic is 0.0
  // with no samples, so report code never needs a count() guard.
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_DOUBLE_EQ(rec.Sum(), 0);
  EXPECT_DOUBLE_EQ(rec.Mean(), 0);
  EXPECT_DOUBLE_EQ(rec.Min(), 0);
  EXPECT_DOUBLE_EQ(rec.Max(), 0);
  EXPECT_DOUBLE_EQ(rec.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(rec.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(rec.Percentile(99), 0);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 0);
  // Merging an empty recorder is a no-op in both directions.
  LatencyRecorder other;
  other.Add(7);
  other.Merge(rec);
  EXPECT_EQ(other.count(), 1u);
  rec.Merge(other);
  EXPECT_EQ(rec.count(), 1u);
}

TEST(WorkloadTest, DefaultMixWeightsSumToOne) {
  double total = 0;
  for (const MixEntry& e : DefaultMix()) total += e.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WorkloadTest, MixCoversAllQueries) {
  auto mix = DefaultMix();
  EXPECT_EQ(mix.size(), 14u + 7u + 8u);
}

TEST(WorkloadTest, SamplerFollowsWeights) {
  // A two-entry mix with 90/10 split.
  std::vector<MixEntry> mix{{QueryRef{QueryKind::kIC, 1}, 0.9},
                            {QueryRef{QueryKind::kIS, 1}, 0.1}};
  MixSampler sampler(mix);
  Rng rng(5);
  int ic = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample(rng).kind == QueryKind::kIC) ++ic;
  }
  EXPECT_NEAR(ic / 10000.0, 0.9, 0.03);
}

TEST(WorkloadTest, QueryNames) {
  EXPECT_EQ((QueryRef{QueryKind::kIC, 5}.Name()), "IC5");
  EXPECT_EQ((QueryRef{QueryKind::kIS, 2}.Name()), "IS2");
  EXPECT_EQ((QueryRef{QueryKind::kIU, 8}.Name()), "IU8");
}

TEST(ReportTest, HumanFormatting) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MB");
  EXPECT_EQ(HumanMillis(0.5), "0.500 ms");
  EXPECT_EQ(HumanMillis(12.3), "12.30 ms");
  EXPECT_EQ(HumanMillis(2500), "2.50 s");
}

TEST(ReportTest, TextTableAligns) {
  TextTable t({"a", "bb"});
  t.AddRow({"xxx", "y"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_NE(s.find("xxx  y"), std::string::npos);
}

TEST(DriverTest, FixedOpCountRunCompletes) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.mode = ExecMode::kFactorizedFused;
  config.threads = 2;
  config.total_ops = 200;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 200u);
  EXPECT_GT(report.throughput, 0);
  // Each per-query recorder accounted.
  uint64_t total = 0;
  for (const auto& [name, rec] : report.per_query) total += rec.count();
  EXPECT_EQ(total, 200u);
}

TEST(DriverTest, UpdatesCanBeDisabled) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 2;
  config.total_ops = 150;
  config.include_updates = false;
  DriverReport report = driver.Run(config);
  for (const auto& [name, rec] : report.per_query) {
    EXPECT_NE(name.rfind("IU", 0), 0u) << "update executed: " << name;
  }
}

TEST(DriverTest, MixedReadWriteRunIsConsistent) {
  // A dedicated graph (updates mutate it).
  testutil::SnbFixture fx(0.01, 99);
  Driver driver(&fx.graph, &fx.data);
  Version before = fx.graph.CurrentVersion();
  DriverConfig config;
  config.mode = ExecMode::kFactorizedFused;
  config.threads = 4;
  config.total_ops = 400;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 400u);
  // Some updates ran and advanced the version counter.
  LatencyRecorder iu = report.Aggregate(QueryKind::kIU);
  EXPECT_GT(iu.count(), 0u);
  EXPECT_EQ(fx.graph.CurrentVersion(), before + iu.count());
}

TEST(DriverTest, AggregateByKind) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 1;
  config.total_ops = 100;
  DriverReport report = driver.Run(config);
  uint64_t sum = report.Aggregate(QueryKind::kIC).count() +
                 report.Aggregate(QueryKind::kIS).count() +
                 report.Aggregate(QueryKind::kIU).count();
  EXPECT_EQ(sum, 100u);
}

TEST(DriverTest, TimedRunWithTraceProducesWindows) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 2;
  config.duration_seconds = 0.6;
  config.total_ops = 0;  // pure duration run
  config.trace_window_seconds = 0.2;
  config.include_updates = false;
  DriverReport report = driver.Run(config);
  EXPECT_GE(report.trace.size(), 2u);
  uint64_t traced = 0;
  for (const TraceWindow& w : report.trace) traced += w.total();
  EXPECT_GT(traced, 0u);
  EXPECT_LE(traced, report.completed);
}

TEST(DriverTest, TimedRunHonorsTotalOpsCap) {
  // Stop-condition precedence (harness/driver.h): with both limits set the
  // run ends at whichever is hit first — here the op cap, long before the
  // generous duration.
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 2;
  config.duration_seconds = 30.0;
  config.total_ops = 50;
  config.include_updates = false;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 50u);
  EXPECT_LT(report.elapsed_seconds, 10.0);
}

TEST(DriverTest, NoStopConditionRunsNothing) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.total_ops = 0;
  config.duration_seconds = 0;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 0u);
}

TEST(ReportTest, BenchJsonReportLayout) {
  BenchJsonReport json("unit");
  json.AddScalar("threads", 4);
  json.AddString("mode", "fused");
  json.AddSectionScalar("sf0.1", "throughput_qps", 123.5);
  LatencyRecorder rec;
  rec.Add(1.0);
  rec.Add(3.0);
  json.AddLatency("sf0.1", "IC5", rec);
  std::string s = json.ToJson();
  EXPECT_NE(s.find("\"bench\": \"unit\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"threads\": 4"), std::string::npos) << s;
  EXPECT_NE(s.find("\"mode\": \"fused\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"sf0.1\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"throughput_qps\": 123.5"), std::string::npos) << s;
  EXPECT_NE(s.find("\"IC5\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"count\": 2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"mean_ms\": 2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"p99_ms\""), std::string::npos) << s;
}

TEST(ReportTest, JsonStringsAreEscaped) {
  BenchJsonReport json("unit");
  json.AddString("note", "quote\" slash\\ tab\t");
  std::string s = json.ToJson();
  EXPECT_NE(s.find("quote\\\" slash\\\\ tab\\t"), std::string::npos) << s;
}

TEST(ReportTest, JsonPathFromArgs) {
  const char* none[] = {"bench"};
  EXPECT_EQ(JsonPathFromArgs(1, const_cast<char**>(none), "x"), "");
  const char* bare[] = {"bench", "--json"};
  EXPECT_EQ(JsonPathFromArgs(2, const_cast<char**>(bare), "x"),
            "BENCH_x.json");
  const char* path[] = {"bench", "--json", "/tmp/out.json"};
  EXPECT_EQ(JsonPathFromArgs(3, const_cast<char**>(path), "x"),
            "/tmp/out.json");
  // A following flag is not a path.
  const char* flagged[] = {"bench", "--json", "--verbose"};
  EXPECT_EQ(JsonPathFromArgs(3, const_cast<char**>(flagged), "x"),
            "BENCH_x.json");
}

TEST(ReportTest, WriteFileRoundTrip) {
  BenchJsonReport json("roundtrip");
  json.AddScalar("ok", 1);
  std::string path =
      ::testing::TempDir() + "/ges_report_roundtrip_test.json";
  ASSERT_TRUE(json.WriteFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, json.ToJson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ges
