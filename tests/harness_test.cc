// Harness tests: latency stats, workload mix, driver runs (including
// concurrent reads + updates).
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "harness/workload.h"
#include "tests/test_util.h"

namespace ges {
namespace {

TEST(LatencyRecorderTest, BasicStats) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(i);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(rec.Min(), 1);
  EXPECT_DOUBLE_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(rec.Percentile(99), 99, 1.01);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 100);
  EXPECT_DOUBLE_EQ(rec.Percentile(0), 1);
}

TEST(LatencyRecorderTest, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2);
}

TEST(LatencyRecorderTest, EmptyRecorderIsZero) {
  LatencyRecorder rec;
  EXPECT_DOUBLE_EQ(rec.Mean(), 0);
  EXPECT_DOUBLE_EQ(rec.Percentile(99), 0);
}

TEST(WorkloadTest, DefaultMixWeightsSumToOne) {
  double total = 0;
  for (const MixEntry& e : DefaultMix()) total += e.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WorkloadTest, MixCoversAllQueries) {
  auto mix = DefaultMix();
  EXPECT_EQ(mix.size(), 14u + 7u + 8u);
}

TEST(WorkloadTest, SamplerFollowsWeights) {
  // A two-entry mix with 90/10 split.
  std::vector<MixEntry> mix{{QueryRef{QueryKind::kIC, 1}, 0.9},
                            {QueryRef{QueryKind::kIS, 1}, 0.1}};
  MixSampler sampler(mix);
  Rng rng(5);
  int ic = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample(rng).kind == QueryKind::kIC) ++ic;
  }
  EXPECT_NEAR(ic / 10000.0, 0.9, 0.03);
}

TEST(WorkloadTest, QueryNames) {
  EXPECT_EQ((QueryRef{QueryKind::kIC, 5}.Name()), "IC5");
  EXPECT_EQ((QueryRef{QueryKind::kIS, 2}.Name()), "IS2");
  EXPECT_EQ((QueryRef{QueryKind::kIU, 8}.Name()), "IU8");
}

TEST(ReportTest, HumanFormatting) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MB");
  EXPECT_EQ(HumanMillis(0.5), "0.500 ms");
  EXPECT_EQ(HumanMillis(12.3), "12.30 ms");
  EXPECT_EQ(HumanMillis(2500), "2.50 s");
}

TEST(ReportTest, TextTableAligns) {
  TextTable t({"a", "bb"});
  t.AddRow({"xxx", "y"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_NE(s.find("xxx  y"), std::string::npos);
}

TEST(DriverTest, FixedOpCountRunCompletes) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.mode = ExecMode::kFactorizedFused;
  config.threads = 2;
  config.total_ops = 200;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 200u);
  EXPECT_GT(report.throughput, 0);
  // Each per-query recorder accounted.
  uint64_t total = 0;
  for (const auto& [name, rec] : report.per_query) total += rec.count();
  EXPECT_EQ(total, 200u);
}

TEST(DriverTest, UpdatesCanBeDisabled) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 2;
  config.total_ops = 150;
  config.include_updates = false;
  DriverReport report = driver.Run(config);
  for (const auto& [name, rec] : report.per_query) {
    EXPECT_NE(name.rfind("IU", 0), 0u) << "update executed: " << name;
  }
}

TEST(DriverTest, MixedReadWriteRunIsConsistent) {
  // A dedicated graph (updates mutate it).
  testutil::SnbFixture fx(0.01, 99);
  Driver driver(&fx.graph, &fx.data);
  Version before = fx.graph.CurrentVersion();
  DriverConfig config;
  config.mode = ExecMode::kFactorizedFused;
  config.threads = 4;
  config.total_ops = 400;
  DriverReport report = driver.Run(config);
  EXPECT_EQ(report.completed, 400u);
  // Some updates ran and advanced the version counter.
  LatencyRecorder iu = report.Aggregate(QueryKind::kIU);
  EXPECT_GT(iu.count(), 0u);
  EXPECT_EQ(fx.graph.CurrentVersion(), before + iu.count());
}

TEST(DriverTest, AggregateByKind) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 1;
  config.total_ops = 100;
  DriverReport report = driver.Run(config);
  uint64_t sum = report.Aggregate(QueryKind::kIC).count() +
                 report.Aggregate(QueryKind::kIS).count() +
                 report.Aggregate(QueryKind::kIU).count();
  EXPECT_EQ(sum, 100u);
}

TEST(DriverTest, TimedRunWithTraceProducesWindows) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Driver driver(&fx.graph, &fx.data);
  DriverConfig config;
  config.threads = 2;
  config.duration_seconds = 0.6;
  config.trace_window_seconds = 0.2;
  config.include_updates = false;
  DriverReport report = driver.Run(config);
  EXPECT_GE(report.trace.size(), 2u);
  uint64_t traced = 0;
  for (const TraceWindow& w : report.trace) traced += w.total();
  EXPECT_GT(traced, 0u);
  EXPECT_LE(traced, report.completed);
}

}  // namespace
}  // namespace ges
