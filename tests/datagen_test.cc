// Datagen tests: determinism, schema completeness, scale behaviour,
// timestamp consistency.
#include <gtest/gtest.h>

#include "datagen/snb_generator.h"
#include "executor/graph_view.h"

namespace ges {
namespace {

TEST(DatagenTest, PersonCountFollowsPaperCurve) {
  // Table 1 of the paper: SF1 ~ 11K persons; the curve is monotone.
  EXPECT_EQ(SnbPersonCount(1.0), 11000u);
  EXPECT_GT(SnbPersonCount(10.0), SnbPersonCount(1.0));
  EXPECT_GE(SnbPersonCount(0.0001), 50u);  // floor
}

TEST(DatagenTest, DeterministicForSeed) {
  SnbConfig config;
  config.scale_factor = 0.01;
  Graph g1, g2;
  SnbData d1 = GenerateSnb(config, &g1);
  SnbData d2 = GenerateSnb(config, &g2);
  EXPECT_EQ(g1.NumVerticesTotal(), g2.NumVerticesTotal());
  EXPECT_EQ(g1.NumEdgesTotal(), g2.NumEdgesTotal());
  ASSERT_EQ(d1.persons.size(), d2.persons.size());
  // Spot-check properties of a few persons.
  GraphView v1(&g1), v2(&g2);
  for (size_t i = 0; i < d1.persons.size(); i += 37) {
    EXPECT_EQ(v1.Property(d1.persons[i], d1.schema.first_name),
              v2.Property(d2.persons[i], d2.schema.first_name));
  }
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  SnbConfig a, b;
  a.scale_factor = b.scale_factor = 0.01;
  a.seed = 1;
  b.seed = 2;
  Graph g1, g2;
  GenerateSnb(a, &g1);
  GenerateSnb(b, &g2);
  EXPECT_NE(g1.NumEdgesTotal(), g2.NumEdgesTotal());
}

class DatagenFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_.scale_factor = 0.02;
    graph_ = new Graph();
    data_ = new SnbData(GenerateSnb(config_, graph_));
  }

  static SnbConfig config_;
  static Graph* graph_;
  static SnbData* data_;
};
SnbConfig DatagenFixture::config_;
Graph* DatagenFixture::graph_ = nullptr;
SnbData* DatagenFixture::data_ = nullptr;

TEST_F(DatagenFixture, EntityCountsScale) {
  const SnbData& d = *data_;
  EXPECT_EQ(d.persons.size(), SnbPersonCount(0.02));
  EXPECT_GT(d.posts.size(), d.persons.size());
  EXPECT_GT(d.comments.size(), d.posts.size());
  EXPECT_GT(d.forums.size(), 0u);
  EXPECT_GT(d.tags.size(), 0u);
  EXPECT_EQ(d.places.size(), d.num_cities + d.num_countries + 6);
}

TEST_F(DatagenFixture, EveryPersonHasCityAndProperties) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId person_city = graph_->FindRelation(
      d.schema.person, d.schema.is_located_in, d.schema.place,
      Direction::kOut);
  ASSERT_NE(person_city, kInvalidRelation);
  for (VertexId p : d.persons) {
    EXPECT_EQ(view.Neighbors(person_city, p).size, 1u);
    EXPECT_FALSE(view.Property(p, d.schema.first_name).is_null());
    EXPECT_FALSE(view.Property(p, d.schema.first_name).AsString().empty());
    int64_t month = view.Property(p, d.schema.birthday_month).AsInt();
    EXPECT_GE(month, 1);
    EXPECT_LE(month, 12);
  }
}

TEST_F(DatagenFixture, KnowsIsSymmetric) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId knows = graph_->FindRelation(d.schema.person, d.schema.knows,
                                          d.schema.person, Direction::kOut);
  for (size_t i = 0; i < d.persons.size(); i += 13) {
    VertexId p = d.persons[i];
    AdjSpan s = view.Neighbors(knows, p);
    for (uint32_t k = 0; k < s.size; ++k) {
      AdjSpan back = view.Neighbors(knows, s.ids[k]);
      bool found = false;
      for (uint32_t j = 0; j < back.size; ++j) found |= back.ids[j] == p;
      EXPECT_TRUE(found) << "knows edge missing reverse direction";
    }
  }
}

TEST_F(DatagenFixture, RepliesAreNewerThanParents) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId reply_of_post = graph_->FindRelation(
      d.schema.comment, d.schema.reply_of, d.schema.post, Direction::kOut);
  int checked = 0;
  for (size_t i = 0; i < d.comments.size(); i += 29) {
    VertexId cmt = d.comments[i];
    AdjSpan parents = view.Neighbors(reply_of_post, cmt);
    for (uint32_t k = 0; k < parents.size; ++k) {
      int64_t child_date =
          view.Property(cmt, d.schema.creation_date).AsInt();
      int64_t parent_date =
          view.Property(parents.ids[k], d.schema.creation_date).AsInt();
      EXPECT_GT(child_date, parent_date);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(DatagenFixture, EveryCommentHasExactlyOneParent) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId to_post = graph_->FindRelation(
      d.schema.comment, d.schema.reply_of, d.schema.post, Direction::kOut);
  RelationId to_comment = graph_->FindRelation(
      d.schema.comment, d.schema.reply_of, d.schema.comment, Direction::kOut);
  for (VertexId cmt : d.comments) {
    uint32_t parents =
        view.Neighbors(to_post, cmt).size + view.Neighbors(to_comment, cmt).size;
    EXPECT_EQ(parents, 1u);
  }
}

TEST_F(DatagenFixture, EveryPostInExactlyOneForum) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId post_forum = graph_->FindRelation(
      d.schema.post, d.schema.container_of, d.schema.forum, Direction::kIn);
  for (VertexId post : d.posts) {
    EXPECT_EQ(view.Neighbors(post_forum, post).size, 1u);
  }
}

TEST_F(DatagenFixture, PlaceHierarchyComplete) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId part_of = graph_->FindRelation(
      d.schema.place, d.schema.is_part_of, d.schema.place, Direction::kOut);
  // Every city maps to a country; every country to a continent.
  for (size_t i = 0; i < d.num_cities + d.num_countries; ++i) {
    EXPECT_EQ(view.Neighbors(part_of, d.places[i]).size, 1u);
  }
  // Continents are roots.
  for (size_t i = d.num_cities + d.num_countries; i < d.places.size(); ++i) {
    EXPECT_EQ(view.Neighbors(part_of, d.places[i]).size, 0u);
  }
}

TEST_F(DatagenFixture, DegreeDistributionIsSkewed) {
  GraphView view(graph_);
  const SnbData& d = *data_;
  RelationId knows = graph_->FindRelation(d.schema.person, d.schema.knows,
                                          d.schema.person, Direction::kOut);
  uint32_t max_deg = 0;
  uint64_t total = 0;
  for (VertexId p : d.persons) {
    uint32_t deg = view.Neighbors(knows, p).size;
    max_deg = std::max(max_deg, deg);
    total += deg;
  }
  double avg = static_cast<double>(total) / d.persons.size();
  EXPECT_GT(max_deg, avg * 4) << "expected power-law hubs";
}

}  // namespace
}  // namespace ges
