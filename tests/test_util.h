// Shared helpers for the GES test suite.
#ifndef GES_TESTS_TEST_UTIL_H_
#define GES_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "datagen/snb_generator.h"
#include "executor/executor.h"
#include "executor/flatblock.h"
#include "storage/graph.h"

namespace ges::testutil {

// Renders a flat block as sorted rows of strings: order-insensitive
// comparison across engines.
inline std::vector<std::string> SortedRows(const FlatBlock& block) {
  std::vector<std::string> rows;
  rows.reserve(block.NumRows());
  for (const auto& row : block.rows()) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Rows in original order (for ORDER BY verification).
inline std::vector<std::string> OrderedRows(const FlatBlock& block) {
  std::vector<std::string> rows;
  rows.reserve(block.NumRows());
  for (const auto& row : block.rows()) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

// A tiny, fully deterministic graph shared by operator tests: the paper's
// Figure 8 data graph. Persons p0..p3, messages m0..m5.
//
//   knows:       p0->p1, p0->p2, p1->p3, p2->p3 (and reverse edges)
//   has_creator: m0->p1, m1->p1, m2->p2, m3->p3, m4->p3, m5->p3
//   msg.len:     m0:140, m1:123, m2:120, m3:130, m4:100, m5:126
struct TinyGraph {
  std::unique_ptr<Graph> graph;
  LabelId person, message;
  LabelId knows, has_creator;
  PropertyId id, len;
  RelationId knows_out;        // PERSON -> PERSON
  RelationId person_messages;  // PERSON <- MESSAGE
  RelationId msg_creator;      // MESSAGE -> PERSON
  std::vector<VertexId> persons;
  std::vector<VertexId> messages;

  TinyGraph() : graph(std::make_unique<Graph>()) {
    Catalog& c = graph->catalog();
    person = c.AddVertexLabel("PERSON");
    message = c.AddVertexLabel("MESSAGE");
    knows = c.AddEdgeLabel("KNOWS");
    has_creator = c.AddEdgeLabel("HAS_CREATOR");
    id = c.AddProperty(person, "id", ValueType::kInt64);
    c.AddProperty(message, "id", ValueType::kInt64);
    len = c.AddProperty(message, "len", ValueType::kInt64);
    graph->RegisterRelation(person, knows, person, /*has_stamp=*/true);
    graph->RegisterRelation(message, has_creator, person);

    for (int i = 0; i < 4; ++i) {
      VertexId v = graph->AddVertexBulk(person, i);
      graph->SetPropertyBulk(v, id, Value::Int(i));
      persons.push_back(v);
    }
    static const int kLens[6] = {140, 123, 120, 130, 100, 126};
    static const int kCreators[6] = {1, 1, 2, 3, 3, 3};
    for (int i = 0; i < 6; ++i) {
      VertexId v = graph->AddVertexBulk(message, i);
      graph->SetPropertyBulk(v, id, Value::Int(i));
      graph->SetPropertyBulk(v, len, Value::Int(kLens[i]));
      messages.push_back(v);
      graph->AddEdgeBulk(has_creator, v, persons[kCreators[i]]);
    }
    auto know = [&](int a, int b) {
      graph->AddEdgeBulk(knows, persons[a], persons[b], 100 + a * 10 + b);
      graph->AddEdgeBulk(knows, persons[b], persons[a], 100 + a * 10 + b);
    };
    know(0, 1);
    know(0, 2);
    know(1, 3);
    know(2, 3);
    graph->FinalizeBulk();

    knows_out = graph->FindRelation(person, knows, person, Direction::kOut);
    person_messages =
        graph->FindRelation(person, has_creator, message, Direction::kIn);
    msg_creator =
        graph->FindRelation(message, has_creator, person, Direction::kOut);
  }
};

// A small generated SNB graph (cached per process) for workload tests.
struct SnbFixture {
  Graph graph;
  SnbData data;

  explicit SnbFixture(double sf = 0.01, uint64_t seed = 42) {
    SnbConfig config;
    config.scale_factor = sf;
    config.seed = seed;
    data = GenerateSnb(config, &graph);
  }

  static SnbFixture& Shared() {
    static SnbFixture* fixture = new SnbFixture();
    return *fixture;
  }
};

}  // namespace ges::testutil

#endif  // GES_TESTS_TEST_UTIL_H_
