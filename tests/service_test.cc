// End-to-end tests of the query service: wire protocol, sessions,
// admission backpressure, idle reaping, drain. The server runs in-process
// on an ephemeral port; clients are real TCP connections.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "harness/service_load.h"
#include "queries/ldbc.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using service::Client;
using service::QueryRequest;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

// One server per fixture-graph test; SnbFixture::Shared is mutated by IU
// queries, so reads always compare at an explicitly pinned version.
std::unique_ptr<Server> StartServer(ServiceConfig config = {}) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = std::make_unique<Server>(&fx.graph, &fx.data, config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

TEST(ServiceProtocolTest, QueryRequestRoundTrip) {
  QueryRequest req;
  req.query_id = 42;
  req.kind = service::QueryKind::kIC;
  req.number = 5;
  req.deadline_ms = 1500;
  req.params.person = 123;
  req.params.first_name = "Jan";
  req.params.max_date = 99999;
  std::string payload = EncodeQueryRequest(req);
  service::WireReader in(payload);
  EXPECT_EQ(in.GetU8(), static_cast<uint8_t>(service::MsgType::kQuery));
  QueryRequest back;
  ASSERT_TRUE(DecodeQueryRequest(&in, &back));
  EXPECT_EQ(back.query_id, 42u);
  EXPECT_EQ(back.kind, service::QueryKind::kIC);
  EXPECT_EQ(back.number, 5);
  EXPECT_EQ(back.deadline_ms, 1500u);
  EXPECT_EQ(back.params.person, 123);
  EXPECT_EQ(back.params.first_name, "Jan");
  EXPECT_EQ(back.params.max_date, 99999);
}

TEST(ServiceProtocolTest, ReaderRejectsTruncatedPayload) {
  service::WireBuf b;
  b.PutU64(7);
  std::string payload = b.Take();
  payload.resize(3);  // cut mid-integer
  service::WireReader in(payload);
  in.GetU64();
  EXPECT_FALSE(in.ok());
}

TEST(ServiceSessionTest, HelloPingParamsSnapshot) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  EXPECT_GT(client.session_id(), 0u);
  EXPECT_TRUE(client.Ping());

  // Session parameter store round-trip.
  std::string value;
  bool present = true;
  EXPECT_TRUE(client.GetParam("answer", &value, &present));
  EXPECT_FALSE(present);
  EXPECT_TRUE(client.SetParam("answer", "42"));
  EXPECT_TRUE(client.GetParam("answer", &value, &present));
  EXPECT_TRUE(present);
  EXPECT_EQ(value, "42");

  // The pinned snapshot matches the graph's version at connect time and
  // refresh re-pins to current.
  uint64_t refreshed = 0;
  EXPECT_TRUE(client.RefreshSnapshot(&refreshed));
  EXPECT_EQ(refreshed, client.snapshot());
  client.Close();
  EXPECT_FALSE(client.connected());
}

TEST(ServiceSessionTest, ConnectionLimitRejectsExtraClients) {
  ServiceConfig config;
  config.max_connections = 1;
  auto server = StartServer(config);
  Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()));
  Client second;
  EXPECT_FALSE(second.Connect("127.0.0.1", server->port()));
  EXPECT_NE(second.last_error().find("RESOURCE_EXHAUSTED"),
            std::string::npos)
      << second.last_error();
  EXPECT_GE(server->stats().connections_rejected.load(), 1u);
}

TEST(ServiceSessionTest, MalformedQueryAnswersInvalidArgument) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  QueryRequest req;
  req.query_id = client.AllocQueryId();
  req.kind = service::QueryKind::kIC;
  req.number = 99;  // out of range
  QueryResponse resp;
  ASSERT_TRUE(client.Run(req, &resp));
  EXPECT_EQ(resp.status, WireStatus::kInvalidArgument);
}

// Acceptance: >= 4 concurrent sessions run IC/IS/IU through the wire and
// reads match direct Executor calls at the same snapshot bit-for-bit.
TEST(ServiceE2eTest, ConcurrentSessionsMatchDirectExecution) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ServiceConfig config;
  config.query_workers = 4;
  auto server = StartServer(config);

  constexpr int kSessions = 4;
  const int ic_numbers[] = {1, 2, 5, 9, 11};
  const int is_numbers[] = {1, 2, 3, 4, 5, 6, 7};
  std::atomic<int> failures{0};
  std::vector<std::thread> sessions;
  for (int tid = 0; tid < kSessions; ++tid) {
    sessions.emplace_back([&, tid] {
      Client client;
      if (!client.Connect("127.0.0.1", server->port())) {
        ++failures;
        return;
      }
      // Each session gets its own deterministic parameter stream; the
      // snapshot pinned at connect keeps reads stable even while other
      // sessions commit IU updates.
      ParamGen gen(&fx.graph, &fx.data, /*seed=*/500 + tid);
      Version snapshot = client.snapshot();
      ExecOptions opts;
      opts.collect_stats = false;
      Executor direct(config.exec_mode, opts);
      GraphView view(&fx.graph, snapshot);

      for (int k : ic_numbers) {
        LdbcParams p = gen.Next();
        QueryResponse resp;
        if (!client.RunIC(k, p, &resp) || resp.status != WireStatus::kOk) {
          ++failures;
          continue;
        }
        QueryResult expect = direct.Run(BuildIC(k, ctx, p), view);
        if (testutil::SortedRows(resp.table) !=
            testutil::SortedRows(expect.table)) {
          ADD_FAILURE() << "IC" << k << " mismatch (session " << tid << ")";
          ++failures;
        }
      }
      for (int k : is_numbers) {
        LdbcParams p = gen.Next();
        QueryResponse resp;
        if (!client.RunIS(k, p, &resp) || resp.status != WireStatus::kOk) {
          ++failures;
          continue;
        }
        QueryResult expect = direct.Run(BuildIS(k, ctx, p), view);
        if (testutil::SortedRows(resp.table) !=
            testutil::SortedRows(expect.table)) {
          ADD_FAILURE() << "IS" << k << " mismatch (session " << tid << ")";
          ++failures;
        }
      }
      // Updates through the wire: must commit and advance this session's
      // snapshot (read-your-writes).
      QueryResponse iu;
      if (!client.RunIU(2, /*seed=*/9000 + tid, &iu) ||
          iu.status != WireStatus::kOk || iu.table.NumRows() != 1) {
        ++failures;
        return;
      }
      int64_t commit = iu.table.rows()[0][0].AsInt();
      if (commit <= static_cast<int64_t>(snapshot)) ++failures;
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server->stats().queries_ok.load(),
            static_cast<uint64_t>(kSessions * 13));
}

TEST(ServiceAdmissionTest, BackpressureAnswersResourceExhausted) {
  ServiceConfig config;
  config.query_workers = 1;
  config.queue_capacity = 2;
  auto server = StartServer(config);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // Pipeline 8 sleeps: one runs, two queue, the rest must bounce with
  // RESOURCE_EXHAUSTED instead of growing the queue.
  constexpr int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    QueryRequest req;
    req.query_id = client.AllocQueryId();
    req.kind = service::QueryKind::kSleep;
    req.seed = 100;  // ms
    ASSERT_TRUE(client.Send(req));
  }
  int ok = 0, rejected = 0;
  for (int i = 0; i < kQueries; ++i) {
    QueryResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp)) << client.last_error();
    if (resp.status == WireStatus::kOk) ++ok;
    if (resp.status == WireStatus::kResourceExhausted) ++rejected;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(ok + rejected, kQueries);
  EXPECT_EQ(server->stats().queries_rejected.load(),
            static_cast<uint64_t>(rejected));
}

TEST(ServiceAdmissionTest, CostModelLearnsFromObservations) {
  service::QueryCostModel model(/*short_threshold_ms=*/5.0);
  // Priors: complex reads start long, short reads start short.
  EXPECT_FALSE(model.IsShort("IC5"));
  EXPECT_TRUE(model.IsShort("IS3"));
  // Observations move a nominally long query under the threshold...
  for (int i = 0; i < 30; ++i) model.Observe("IC5", 0.3);
  EXPECT_TRUE(model.IsShort("IC5"));
  // ...and a nominally short one above it.
  for (int i = 0; i < 30; ++i) model.Observe("IS3", 80.0);
  EXPECT_FALSE(model.IsShort("IS3"));
}

TEST(ServiceSessionTest, IdleSessionsAreReaped) {
  ServiceConfig config;
  config.idle_timeout_seconds = 0.15;
  auto server = StartServer(config);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  ASSERT_TRUE(client.Ping());
  // Go idle — no frames at all — past the timeout; the reaper shuts the
  // connection down. (Pinging while waiting would reset the idle clock.)
  bool reaped = false;
  for (int i = 0; i < 100 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    reaped = server->stats().sessions_reaped.load() >= 1;
  }
  EXPECT_TRUE(reaped);
  EXPECT_FALSE(client.Ping()) << "server should have closed the session";
}

TEST(ServiceDrainTest, DrainCancelsInflightAndRefusesNewConnections) {
  ServiceConfig config;
  config.query_workers = 1;
  auto server = StartServer(config);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // One long sleep runs, two more wait behind it.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    QueryRequest req;
    req.query_id = client.AllocQueryId();
    req.kind = service::QueryKind::kSleep;
    req.seed = 400;  // ms, far beyond the drain grace below
    ids.push_back(req.query_id);
    ASSERT_TRUE(client.Send(req));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->Drain(/*grace_seconds=*/0.05);
  EXPECT_TRUE(server->draining());

  // Every admitted query is still answered — with an interruption status,
  // not silence.
  int non_ok = 0, got = 0;
  for (int i = 0; i < 3; ++i) {
    QueryResponse resp;
    if (!client.ReadResponse(&resp)) break;
    ++got;
    if (resp.status != WireStatus::kOk) ++non_ok;
  }
  EXPECT_EQ(got, 3);
  EXPECT_GE(non_ok, 2) << "drain must cut the queued sleeps short";

  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server->port()));
}

// The harness load generator against a live server: sanity for the bench
// path (closed + open loop, statuses accounted, latencies recorded).
TEST(ServiceLoadTest, ClosedAndOpenLoopRunToCompletion) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  ServiceConfig config;
  config.query_workers = 2;
  auto server = StartServer(config);
  ParamGen params(&fx.graph, &fx.data, /*seed=*/321);
  std::vector<MixEntry> mix = {{{QueryKind::kIS, 2}, 3.0},
                               {{QueryKind::kIS, 3}, 3.0},
                               {{QueryKind::kIC, 5}, 1.0}};

  ServiceLoadConfig lc;
  lc.port = server->port();
  lc.connections = 3;
  lc.total_ops = 60;
  lc.mix = mix;
  ServiceLoadReport closed = RunServiceLoad(lc, &params);
  EXPECT_EQ(closed.completed, 60u);
  EXPECT_EQ(closed.errors, 0u);
  EXPECT_EQ(closed.ok, 60u);
  EXPECT_GT(closed.AggregateAll().count(), 0u);
  EXPECT_GT(closed.AggregatePrefix("IS").count(), 0u);

  lc.open_loop_rate = 200;  // well under capacity
  ServiceLoadReport open = RunServiceLoad(lc, &params);
  EXPECT_EQ(open.completed, 60u);
  EXPECT_EQ(open.errors, 0u);
  EXPECT_GT(open.AggregateAll().count(), 0u);
}

}  // namespace
}  // namespace ges
