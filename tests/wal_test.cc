// Durability tests: WAL framing, torn-tail detection at every byte
// boundary, crash-free recovery via Graph::Open, fault injection (failed /
// short writes latching read-only mode), checkpointing and fsync policies.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "storage/fault_fs.h"
#include "storage/graph.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/ges_wal_test_XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

// --- CRC32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SeedChains) {
  const std::string data = "the quick brown fox";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t part = Crc32c(data.data(), 7);
  uint32_t chained = Crc32c(data.data() + 7, data.size() - 7, part);
  EXPECT_EQ(chained, whole);
}

// --- record codec ---------------------------------------------------------

TEST(WalRecordTest, RoundtripsEveryType) {
  std::vector<WalRecord> records;
  WalRecord begin;
  begin.type = WalRecordType::kBeginTx;
  begin.txid = 42;
  records.push_back(begin);

  // Body records carry no txid on the wire (it is implied by the
  // enclosing Begin/Commit pair), so leave it defaulted here.
  WalRecord vtx;
  vtx.type = WalRecordType::kInsertVertex;
  vtx.label = 3;
  vtx.ext_id = -17;
  records.push_back(vtx);

  WalRecord prop;
  prop.type = WalRecordType::kSetProperty;
  prop.label = 3;
  prop.ext_id = 9;
  prop.prop = 7;
  prop.value = Value::String("hello wal");
  records.push_back(prop);

  WalRecord prop2 = prop;
  prop2.value = Value::Double(3.25);
  records.push_back(prop2);

  WalRecord edge;
  edge.type = WalRecordType::kInsertEdge;
  edge.edge_label = 2;
  edge.src_label = 3;
  edge.src_ext = 100;
  edge.dst_label = 4;
  edge.dst_ext = 200;
  edge.stamp = 1234567;
  records.push_back(edge);

  WalRecord tomb = edge;
  tomb.type = WalRecordType::kDeleteTombstone;
  tomb.stamp = 0;  // only inserts carry a stamp on the wire
  records.push_back(tomb);

  WalRecord commit;
  commit.type = WalRecordType::kCommitTx;
  commit.txid = 42;
  records.push_back(commit);

  for (const WalRecord& rec : records) {
    std::string payload = EncodeWalRecord(rec);
    WalRecord out;
    ASSERT_TRUE(DecodeWalRecord(payload, &out));
    EXPECT_EQ(out.type, rec.type);
    EXPECT_EQ(out.txid, rec.txid);
    EXPECT_EQ(out.label, rec.label);
    EXPECT_EQ(out.ext_id, rec.ext_id);
    EXPECT_EQ(out.edge_label, rec.edge_label);
    EXPECT_EQ(out.src_label, rec.src_label);
    EXPECT_EQ(out.src_ext, rec.src_ext);
    EXPECT_EQ(out.dst_label, rec.dst_label);
    EXPECT_EQ(out.dst_ext, rec.dst_ext);
    EXPECT_EQ(out.stamp, rec.stamp);
    EXPECT_EQ(out.prop, rec.prop);
    EXPECT_EQ(out.value, rec.value);
  }
}

TEST(WalRecordTest, DecodeRejectsGarbage) {
  WalRecord out;
  EXPECT_FALSE(DecodeWalRecord("", &out));
  EXPECT_FALSE(DecodeWalRecord("\xFF", &out));
  EXPECT_FALSE(DecodeWalRecord(std::string("\x01"), &out));  // txid missing
}

// --- writer + scan --------------------------------------------------------

std::vector<WalRecord> SimpleTxn(uint64_t txid) {
  std::vector<WalRecord> recs(3);
  recs[0].type = WalRecordType::kBeginTx;
  recs[0].txid = txid;
  recs[1].type = WalRecordType::kInsertVertex;
  recs[1].txid = txid;
  recs[1].label = 1;
  recs[1].ext_id = static_cast<int64_t>(txid) * 10;
  recs[2].type = WalRecordType::kCommitTx;
  recs[2].txid = txid;
  return recs;
}

TEST(WalWriterTest, AppendScanRoundtrip) {
  TempDir dir;
  WalOptions opts;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  for (uint64_t t = 1; t <= 3; ++t) {
    uint64_t lsn = 0;
    ASSERT_TRUE(writer->AppendTxn(SimpleTxn(t), &lsn).ok());
    ASSERT_TRUE(writer->WaitDurable(lsn).ok());
  }
  writer.reset();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
  ASSERT_EQ(scan.committed.size(), 3u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.dangling_records, 0u);
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  for (uint64_t t = 1; t <= 3; ++t) {
    const WalTxn& txn = scan.committed[t - 1];
    EXPECT_EQ(txn.txid, t);
    EXPECT_EQ(txn.commit_version, t);
    ASSERT_EQ(txn.records.size(), 1u);
    EXPECT_EQ(txn.records[0].ext_id, static_cast<int64_t>(t) * 10);
  }
}

TEST(WalWriterTest, ResumesAfterReopen) {
  TempDir dir;
  WalOptions opts;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  uint64_t lsn = 0;
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(1), &lsn).ok());
  ASSERT_TRUE(writer->WaitDurable(lsn).ok());
  writer.reset();

  // Reopen and append more: both transactions must survive.
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(2), &lsn).ok());
  ASSERT_TRUE(writer->WaitDurable(lsn).ok());
  writer.reset();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
  EXPECT_EQ(scan.committed.size(), 2u);
}

TEST(WalScanTest, MissingFileIsEmpty) {
  TempDir dir;
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
  EXPECT_EQ(scan.committed.size(), 0u);
  EXPECT_EQ(scan.file_bytes, 0u);
}

TEST(WalScanTest, WrongMagicIsAnError) {
  TempDir dir;
  WriteFile(WalPath(dir.path()), "NOTAWAL0 trailing bytes");
  WalScanResult scan;
  EXPECT_FALSE(
      ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
}

TEST(WalScanTest, UncommittedTailIsDanglingNotCommitted) {
  TempDir dir;
  WalOptions opts;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  uint64_t lsn = 0;
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(1), &lsn).ok());
  ASSERT_TRUE(writer->WaitDurable(lsn).ok());
  writer.reset();

  // Append a Begin + body with no Commit — a crash between append and
  // commit-frame write.
  std::string tail;
  std::vector<WalRecord> partial = SimpleTxn(2);
  partial.pop_back();  // drop CommitTx
  for (const WalRecord& rec : partial) {
    AppendWalFrame(&tail, EncodeWalRecord(rec));
  }
  std::ofstream out(WalPath(dir.path()),
                    std::ios::binary | std::ios::app);
  out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  out.close();

  WalScanResult scan;
  ASSERT_TRUE(ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
  EXPECT_EQ(scan.committed.size(), 1u);
  // Only the data record dangles; the Begin marker itself carries no data.
  EXPECT_EQ(scan.dangling_records, 1u);
  EXPECT_FALSE(scan.torn_tail);  // all frames are whole, txn just unfinished
}

// The satellite requirement: cut the log at EVERY byte boundary of the
// last transaction's frames; recovery must stop at exactly the last
// complete committed transaction, never seeing a partial one.
TEST(WalScanTest, TruncationAtEveryByteBoundary) {
  TempDir dir;
  WalOptions opts;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  uint64_t lsn_after_two = 0;
  uint64_t lsn_after_three = 0;
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(1), &lsn_after_two).ok());
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(2), &lsn_after_two).ok());
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(3), &lsn_after_three).ok());
  ASSERT_TRUE(writer->WaitDurable(lsn_after_three).ok());
  writer.reset();

  const std::string full = ReadFile(WalPath(dir.path()));
  ASSERT_EQ(full.size(), lsn_after_three);

  for (uint64_t cut = lsn_after_two; cut < lsn_after_three; ++cut) {
    WriteFile(WalPath(dir.path()), full.substr(0, cut));
    WalScanResult scan;
    ASSERT_TRUE(
        ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok())
        << "cut at byte " << cut;
    EXPECT_EQ(scan.committed.size(), 2u) << "cut at byte " << cut;
    EXPECT_LE(scan.valid_bytes, cut) << "cut at byte " << cut;
    EXPECT_GE(scan.valid_bytes, lsn_after_two) << "cut at byte " << cut;
  }
}

// Bit-flip every byte of the last transaction: the CRC (or the length
// bound) must reject the damaged frame and recovery stops before it.
TEST(WalScanTest, BitFlipInLastTxnDetected) {
  TempDir dir;
  WalOptions opts;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Open(WalPath(dir.path()), opts,
                              FileSystem::Default(), &writer)
                  .ok());
  uint64_t lsn_after_two = 0;
  uint64_t lsn_after_three = 0;
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(1), &lsn_after_two).ok());
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(2), &lsn_after_two).ok());
  ASSERT_TRUE(writer->AppendTxn(SimpleTxn(3), &lsn_after_three).ok());
  ASSERT_TRUE(writer->WaitDurable(lsn_after_three).ok());
  writer.reset();

  const std::string full = ReadFile(WalPath(dir.path()));
  for (uint64_t off = lsn_after_two; off < lsn_after_three; ++off) {
    std::string damaged = full;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x40);
    WriteFile(WalPath(dir.path()), damaged);
    WalScanResult scan;
    Status s = ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan);
    ASSERT_TRUE(s.ok()) << "flip at byte " << off << ": " << s.message();
    // The damaged txn must never surface as committed; the two clean
    // transactions before it always must.
    EXPECT_EQ(scan.committed.size(), 2u) << "flip at byte " << off;
    EXPECT_TRUE(scan.torn_tail) << "flip at byte " << off;
  }
}

// --- graph-level durability ----------------------------------------------

DurabilityOptions TestDurOpts(FileSystem* fs = nullptr) {
  DurabilityOptions opts;
  opts.wal.fsync_policy = FsyncPolicy::kAlways;
  opts.fs = fs;
  return opts;
}

TEST(GraphDurabilityTest, CommitsReplayOnOpen) {
  TempDir dir;
  Version last_commit = 0;
  {
    TinyGraph tiny;
    ASSERT_TRUE(
        tiny.graph->EnableDurability(dir.path(), TestDurOpts()).ok());
    ASSERT_TRUE(Graph::SnapshotExists(dir.path()));

    auto t1 = tiny.graph->BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        t1->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 7).ok());
    ASSERT_TRUE(t1->Commit(&last_commit).ok());

    auto t2 = tiny.graph->BeginWrite({tiny.messages[0]});
    t2->SetProperty(tiny.messages[0], tiny.len, Value::Int(999));
    ASSERT_TRUE(t2->Commit(&last_commit).ok());

    auto t3 = tiny.graph->BeginWrite({tiny.persons[1]});
    VertexId nv =
        t3->CreateVertex(tiny.person, 50, {{tiny.id, Value::Int(50)}});
    ASSERT_TRUE(t3->AddEdge(tiny.knows, tiny.persons[1], nv, 8).ok());
    ASSERT_TRUE(t3->Commit(&last_commit).ok());
  }

  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
  EXPECT_EQ(info.replayed_txns, 3u);
  EXPECT_EQ(info.skipped_txns, 0u);
  EXPECT_EQ(info.truncated_bytes, 0u);
  EXPECT_EQ(g->CurrentVersion(), last_commit);

  Catalog& c = g->catalog();
  LabelId person = c.AddVertexLabel("PERSON");
  LabelId message = c.AddVertexLabel("MESSAGE");
  LabelId knows = c.AddEdgeLabel("KNOWS");
  PropertyId len = c.Property("len");
  Version v = g->CurrentVersion();
  VertexId p0 = g->FindByExtId(person, 0, v);
  VertexId p1 = g->FindByExtId(person, 1, v);
  VertexId m0 = g->FindByExtId(message, 0, v);
  VertexId nv = g->FindByExtId(person, 50, v);
  ASSERT_NE(nv, kInvalidVertex);
  EXPECT_EQ(g->GetProperty(m0, len, v), Value::Int(999));
  RelationId knows_out = g->FindRelation(person, knows, person,
                                         Direction::kOut);
  EXPECT_EQ(g->Degree(knows_out, p0, v), 3u);  // 2 bulk + replayed edge
  EXPECT_EQ(g->Degree(knows_out, p1, v), 3u);  // 2 bulk + edge to nv
}

TEST(GraphDurabilityTest, RecoveryIsIdempotentAcrossReopens) {
  TempDir dir;
  {
    TinyGraph tiny;
    ASSERT_TRUE(
        tiny.graph->EnableDurability(dir.path(), TestDurOpts()).ok());
    auto t = tiny.graph->BeginWrite({tiny.messages[1]});
    t->SetProperty(tiny.messages[1], tiny.len, Value::Int(7));
    Version v = 0;
    ASSERT_TRUE(t->Commit(&v).ok());
  }
  // Open twice without checkpointing: the second open replays the same
  // WAL against the same snapshot and must see identical state.
  for (int round = 0; round < 2; ++round) {
    std::unique_ptr<Graph> g;
    RecoveryInfo info;
    ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
    EXPECT_EQ(info.replayed_txns, 1u) << "round " << round;
    Catalog& c = g->catalog();
    LabelId message = c.AddVertexLabel("MESSAGE");
    Version v = g->CurrentVersion();
    VertexId m1 = g->FindByExtId(message, 1, v);
    EXPECT_EQ(g->GetProperty(m1, c.Property("len"), v), Value::Int(7));
  }
}

TEST(GraphDurabilityTest, TornWalTailTruncatedOnOpen) {
  TempDir dir;
  {
    TinyGraph tiny;
    ASSERT_TRUE(
        tiny.graph->EnableDurability(dir.path(), TestDurOpts()).ok());
    for (int i = 0; i < 2; ++i) {
      auto t = tiny.graph->BeginWrite({tiny.messages[i]});
      t->SetProperty(tiny.messages[i], tiny.len, Value::Int(1000 + i));
      Version v = 0;
      ASSERT_TRUE(t->Commit(&v).ok());
    }
  }
  // Tear the tail: cut the last 5 bytes of the second transaction.
  std::string wal = ReadFile(WalPath(dir.path()));
  WriteFile(WalPath(dir.path()), wal.substr(0, wal.size() - 5));

  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
  EXPECT_EQ(info.replayed_txns, 1u);
  EXPECT_GT(info.truncated_bytes, 0u);
  Catalog& c = g->catalog();
  LabelId message = c.AddVertexLabel("MESSAGE");
  Version v = g->CurrentVersion();
  EXPECT_EQ(g->GetProperty(g->FindByExtId(message, 0, v), c.Property("len"),
                           v),
            Value::Int(1000));
  EXPECT_EQ(g->GetProperty(g->FindByExtId(message, 1, v), c.Property("len"),
                           v),
            Value::Int(123));  // bulk value: torn txn must not apply

  // The truncation is physical: a second scan sees a clean file.
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(WalPath(dir.path()), FileSystem::Default(), &scan).ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.committed.size(), 1u);
}

TEST(GraphDurabilityTest, CheckpointTruncatesWalAndSkipsReplayed) {
  TempDir dir;
  uint64_t wal_after_checkpoint = 0;
  {
    TinyGraph tiny;
    ASSERT_TRUE(
        tiny.graph->EnableDurability(dir.path(), TestDurOpts()).ok());
    for (int i = 0; i < 3; ++i) {
      auto t = tiny.graph->BeginWrite({tiny.messages[i]});
      t->SetProperty(tiny.messages[i], tiny.len, Value::Int(2000 + i));
      Version v = 0;
      ASSERT_TRUE(t->Commit(&v).ok());
    }
    uint64_t before = tiny.graph->WalBytes();
    ASSERT_TRUE(tiny.graph->Checkpoint().ok());
    wal_after_checkpoint = tiny.graph->WalBytes();
    EXPECT_LT(wal_after_checkpoint, before);

    // One more commit after the checkpoint.
    auto t = tiny.graph->BeginWrite({tiny.messages[3]});
    t->SetProperty(tiny.messages[3], tiny.len, Value::Int(2003));
    Version v = 0;
    ASSERT_TRUE(t->Commit(&v).ok());
  }

  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
  // Only the post-checkpoint transaction replays.
  EXPECT_EQ(info.replayed_txns, 1u);
  Catalog& c = g->catalog();
  LabelId message = c.AddVertexLabel("MESSAGE");
  PropertyId len = c.Property("len");
  Version v = g->CurrentVersion();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(g->GetProperty(g->FindByExtId(message, i, v), len, v),
              Value::Int(2000 + i))
        << "message " << i;
  }
}

TEST(GraphDurabilityTest, ShouldCheckpointFollowsThreshold) {
  TempDir dir;
  TinyGraph tiny;
  DurabilityOptions opts = TestDurOpts();
  // Between the 8-byte WAL magic and one committed txn's frames: a fresh
  // (or freshly rotated) log sits below, any commit pushes it above.
  opts.checkpoint_wal_bytes = 32;
  ASSERT_TRUE(tiny.graph->EnableDurability(dir.path(), opts).ok());
  EXPECT_FALSE(tiny.graph->ShouldCheckpoint());  // header only
  auto t = tiny.graph->BeginWrite({tiny.messages[0]});
  t->SetProperty(tiny.messages[0], tiny.len, Value::Int(1));
  Version v = 0;
  ASSERT_TRUE(t->Commit(&v).ok());
  EXPECT_TRUE(tiny.graph->ShouldCheckpoint());
  ASSERT_TRUE(tiny.graph->MaybeCheckpoint().ok());
  EXPECT_FALSE(tiny.graph->ShouldCheckpoint());
}

// --- fault injection ------------------------------------------------------

TEST(FaultInjectionTest, AppendFailureLatchesReadOnly) {
  TempDir dir;
  FaultFS fs;
  TinyGraph tiny;
  ASSERT_TRUE(
      tiny.graph->EnableDurability(dir.path(), TestDurOpts(&fs)).ok());

  fs.Arm(1, FaultFS::FaultKind::kFail);
  auto t = tiny.graph->BeginWrite({tiny.messages[0]});
  t->SetProperty(tiny.messages[0], tiny.len, Value::Int(31337));
  Version v = 0;
  Status s = t->Commit(&v);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(fs.faults_fired(), 1u);
  EXPECT_TRUE(tiny.graph->read_only());
  EXPECT_NE(tiny.graph->read_only_reason().find("injected"),
            std::string::npos);

  // The failed transaction must not be visible.
  Version now = tiny.graph->CurrentVersion();
  EXPECT_EQ(tiny.graph->GetProperty(tiny.messages[0], tiny.len, now),
            Value::Int(140));

  // Reads keep working; further commits fail fast.
  EXPECT_EQ(tiny.graph->Degree(tiny.knows_out, tiny.persons[0], now), 2u);
  auto t2 = tiny.graph->BeginWrite({tiny.messages[1]});
  t2->SetProperty(tiny.messages[1], tiny.len, Value::Int(1));
  Version v2 = 0;
  EXPECT_FALSE(t2->Commit(&v2).ok());

  // Checkpointing a read-only graph is refused (nothing new is durable).
  EXPECT_FALSE(tiny.graph->Checkpoint().ok());
}

TEST(FaultInjectionTest, ShortWriteLeavesRecoverableLog) {
  TempDir dir;
  Version committed_version = 0;
  {
    FaultFS fs;
    TinyGraph tiny;
    ASSERT_TRUE(
        tiny.graph->EnableDurability(dir.path(), TestDurOpts(&fs)).ok());

    auto ok_txn = tiny.graph->BeginWrite({tiny.messages[0]});
    ok_txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(777));
    ASSERT_TRUE(ok_txn->Commit(&committed_version).ok());

    // The next append tears mid-frame: half the bytes land, then EIO.
    fs.Arm(1, FaultFS::FaultKind::kShortWrite);
    auto torn = tiny.graph->BeginWrite({tiny.messages[1]});
    torn->SetProperty(tiny.messages[1], tiny.len, Value::Int(888));
    Version v = 0;
    EXPECT_FALSE(torn->Commit(&v).ok());
    EXPECT_TRUE(tiny.graph->read_only());
  }

  // Recovery (with a healthy filesystem) keeps the committed transaction
  // and truncates the torn one.
  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
  EXPECT_EQ(info.replayed_txns, 1u);
  EXPECT_GT(info.truncated_bytes, 0u);
  Catalog& c = g->catalog();
  LabelId message = c.AddVertexLabel("MESSAGE");
  PropertyId len = c.Property("len");
  Version v = g->CurrentVersion();
  EXPECT_EQ(g->CurrentVersion(), committed_version);
  EXPECT_EQ(g->GetProperty(g->FindByExtId(message, 0, v), len, v),
            Value::Int(777));
  EXPECT_EQ(g->GetProperty(g->FindByExtId(message, 1, v), len, v),
            Value::Int(123));  // torn txn rolled back to the bulk value
}

TEST(FaultInjectionTest, DelayFaultOnlyDelays) {
  TempDir dir;
  FaultFS fs;
  TinyGraph tiny;
  ASSERT_TRUE(
      tiny.graph->EnableDurability(dir.path(), TestDurOpts(&fs)).ok());
  fs.Arm(1, FaultFS::FaultKind::kDelay, /*delay_ms=*/10);
  auto t = tiny.graph->BeginWrite({tiny.messages[0]});
  t->SetProperty(tiny.messages[0], tiny.len, Value::Int(5));
  Version v = 0;
  EXPECT_TRUE(t->Commit(&v).ok());
  EXPECT_FALSE(tiny.graph->read_only());
  EXPECT_EQ(fs.faults_fired(), 1u);
}

// --- fsync policies -------------------------------------------------------

TEST(FsyncPolicyTest, ParseAndName) {
  FsyncPolicy p;
  ASSERT_TRUE(ParseFsyncPolicy("always", &p));
  EXPECT_EQ(p, FsyncPolicy::kAlways);
  ASSERT_TRUE(ParseFsyncPolicy("interval", &p));
  EXPECT_EQ(p, FsyncPolicy::kInterval);
  ASSERT_TRUE(ParseFsyncPolicy("never", &p));
  EXPECT_EQ(p, FsyncPolicy::kNever);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &p));
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
}

class FsyncPolicySmokeTest
    : public ::testing::TestWithParam<FsyncPolicy> {};

TEST_P(FsyncPolicySmokeTest, CommitAndRecover) {
  TempDir dir;
  {
    TinyGraph tiny;
    DurabilityOptions opts = TestDurOpts();
    opts.wal.fsync_policy = GetParam();
    opts.wal.fsync_interval_ms = 1;
    ASSERT_TRUE(tiny.graph->EnableDurability(dir.path(), opts).ok());
    auto t = tiny.graph->BeginWrite({tiny.messages[0]});
    t->SetProperty(tiny.messages[0], tiny.len, Value::Int(4242));
    Version v = 0;
    ASSERT_TRUE(t->Commit(&v).ok());
    // Graph destruction closes the WAL writer (flushing the file).
  }
  std::unique_ptr<Graph> g;
  RecoveryInfo info;
  ASSERT_TRUE(Graph::Open(dir.path(), TestDurOpts(), &g, &info).ok());
  EXPECT_EQ(info.replayed_txns, 1u);
  Catalog& c = g->catalog();
  LabelId message = c.AddVertexLabel("MESSAGE");
  Version v = g->CurrentVersion();
  EXPECT_EQ(g->GetProperty(g->FindByExtId(message, 0, v), c.Property("len"),
                           v),
            Value::Int(4242));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FsyncPolicySmokeTest,
                         ::testing::Values(FsyncPolicy::kAlways,
                                           FsyncPolicy::kInterval,
                                           FsyncPolicy::kNever));

}  // namespace
}  // namespace ges
