// WAL-shipping replication (DESIGN.md §13), end to end and in-process:
// snapshot + WAL-catch-up bootstrap, live frame streaming, durable replica
// restart, semi-synchronous commit acks, per-replica lag in ServiceStats,
// read-your-writes floors (LAGGING bounces), replica-aware client routing,
// and replica promotion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/snb_generator.h"
#include "queries/ldbc.h"
#include "replication/log_shipper.h"
#include "replication/replica.h"
#include "replication/replication_wire.h"
#include "replication/routed_client.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "storage/graph.h"
#include "storage/wal.h"

namespace ges {
namespace {

using replication::Endpoint;
using replication::Replica;
using replication::RoutedClient;
using service::Client;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireReader;
using service::WireStatus;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/ges_repl_test_XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SnbData SmallSnb(Graph* g) {
  SnbConfig snb;
  snb.scale_factor = 0.01;
  return GenerateSnb(snb, g);
}

Replica::Options ReplicaOpts(uint16_t primary_port,
                             const std::string& name = "replica") {
  Replica::Options opts;
  opts.primary_port = primary_port;
  opts.name = name;
  return opts;
}

// Runs one IU through `client`, asserting it commits; returns the commit
// version from the response table.
uint64_t CommitIU(Client* client, int number, uint64_t seed) {
  QueryResponse resp;
  EXPECT_TRUE(client->RunIU(number, seed, &resp)) << client->last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_EQ(resp.table.NumRows(), 1u);
  return resp.snapshot_version;
}

// Order- and layout-independent digest of every relation's live adjacency
// at the graph's current version, keyed by external ids. Two graphs with
// the same logical content hash equal regardless of internal id
// assignment or where each edge physically lives (base CSR, MVCC overlay,
// or compressed segment).
uint64_t GraphFingerprint(const Graph& g) {
  const Version snap = g.CurrentVersion();
  const size_t num_vertices = g.NumVerticesTotal();
  AdjScratch scratch;
  uint64_t total = 0;
  for (RelationId rel = 0; rel < g.NumRelations(); ++rel) {
    // Numeric RelationIds are not stable across snapshot save/load (the
    // bootstrap path re-registers relations in sorted-key order), so hash
    // the relation's logical identity instead of its id.
    const RelationKey& key = g.RelationKeyOf(rel);
    const uint64_t rel_tag = (uint64_t{key.src_label} << 40) ^
                             (uint64_t{key.edge_label} << 24) ^
                             (uint64_t{key.dst_label} << 8) ^
                             static_cast<uint64_t>(key.direction);
    for (VertexId v = 0; v < num_vertices; ++v) {
      AdjSpan span = g.Neighbors(rel, v, snap, &scratch);
      std::vector<std::pair<int64_t, int64_t>> edges;
      for (uint32_t i = 0; i < span.size; ++i) {
        if (span.ids[i] == kInvalidVertex) continue;
        edges.emplace_back(g.ExtIdOf(span.ids[i], snap),
                           span.stamps != nullptr ? span.stamps[i] : 0);
      }
      if (edges.empty()) continue;
      std::sort(edges.begin(), edges.end());
      uint64_t h = 1469598103934665603ull;  // FNV-1a per source vertex
      auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 1099511628211ull;
      };
      mix(rel_tag);
      mix(static_cast<uint64_t>(g.ExtIdOf(v, snap)));
      for (const auto& [ext, stamp] : edges) {
        mix(static_cast<uint64_t>(ext));
        mix(static_cast<uint64_t>(stamp));
      }
      total += h;  // commutative fold: vertex visit order is irrelevant
    }
  }
  return total;
}

TEST(ReplicationWireTest, WalFrameCodecRoundTrip) {
  std::vector<WalRecord> records;
  WalRecord begin;
  begin.type = WalRecordType::kBeginTx;
  begin.txid = 7;
  records.push_back(begin);
  WalRecord ins;
  ins.type = WalRecordType::kInsertVertex;
  ins.txid = 7;
  ins.label = static_cast<LabelId>(3);
  ins.ext_id = 123;
  records.push_back(ins);
  WalRecord commit;
  commit.type = WalRecordType::kCommitTx;
  commit.txid = 7;
  records.push_back(commit);

  std::string frame = replication::EncodeWalFrame(/*commit_version=*/7,
                                                  records);
  WireReader in(frame);
  ASSERT_EQ(static_cast<service::MsgType>(in.GetU8()),
            service::MsgType::kWalFrame);
  WalTxn tx;
  ASSERT_TRUE(replication::DecodeWalFrame(&in, &tx));
  EXPECT_EQ(tx.commit_version, 7u);
  EXPECT_TRUE(tx.committed);
  // Begin/Commit markers are stripped: the frame delimits the txn itself.
  ASSERT_EQ(tx.records.size(), 1u);
  EXPECT_EQ(tx.records[0].type, WalRecordType::kInsertVertex);
  EXPECT_EQ(tx.records[0].label, static_cast<LabelId>(3));
  EXPECT_EQ(tx.records[0].ext_id, 123);

  // Truncated payloads are rejected, not misparsed.
  std::string cut = frame.substr(0, frame.size() - 3);
  WireReader bad(cut);
  bad.GetU8();
  WalTxn garbage;
  EXPECT_FALSE(replication::DecodeWalFrame(&bad, &garbage));
}

TEST(ReplicationTest, BootstrapSnapshotServesReadsAndRejectsWrites) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  Server primary(&primary_graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;

  // One real commit so the bootstrap snapshot carries a nonzero version
  // (bulk-loaded data alone sits at v0).
  {
    Client pclient;
    ASSERT_TRUE(pclient.Connect("127.0.0.1", primary.port()));
    ASSERT_GT(CommitIU(&pclient, 1, /*seed=*/7), 0u);
    pclient.Close();
  }

  Replica replica(ReplicaOpts(primary.port()));
  Status s = replica.Start();
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(replica.applied_version(), primary_graph.CurrentVersion());
  EXPECT_EQ(replica.graph()->NumVerticesTotal(),
            primary_graph.NumVerticesTotal());
  // The bootstrap snapshot flattens the primary's MVCC overlay into the
  // base CSR, and NumEdgesTotal counts only the CSR — so the replica may
  // report MORE physical edges than the primary (whose overlay edges are
  // invisible to the counter), never fewer.
  EXPECT_GE(replica.graph()->NumEdgesTotal(), primary_graph.NumEdgesTotal());

  // Serve reads from the replica's graph through a replica-mode server.
  SnbData rdata = RebuildSnbData(replica.graph());
  ServiceConfig rcfg;
  rcfg.replica = true;
  Server replica_server(replica.graph(), &rdata, rcfg);
  ASSERT_TRUE(replica_server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", replica_server.port()));
  ParamGen gen(replica.graph(), &rdata, /*seed=*/1);
  QueryResponse resp;
  ASSERT_TRUE(client.RunIS(1, gen.Next(), &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_GT(resp.snapshot_version, 0u);

  // The single-writer rule on the wire: updates bounce with READ_ONLY.
  ASSERT_TRUE(client.RunIU(1, /*seed=*/1, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kReadOnly);
  EXPECT_NE(resp.message.find("primary"), std::string::npos) << resp.message;

  client.Close();
  replica_server.Drain(2.0);
  replica.Stop();
  primary.Drain(2.0);
}

TEST(ReplicationTest, LiveWalStreamingAdvancesReplica) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  Server primary(&primary_graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;

  Replica replica(ReplicaOpts(primary.port()));
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port()));
  uint64_t last_commit = 0;
  for (int i = 1; i <= 5; ++i) {
    last_commit = CommitIU(&client, 1 + (i % 3), /*seed=*/100 + i);
  }
  ASSERT_GT(last_commit, 0u);

  ASSERT_TRUE(replica.WaitForVersion(last_commit, /*timeout_s=*/10.0))
      << "replica stuck at v" << replica.applied_version() << ": "
      << replica.last_error();
  EXPECT_EQ(replica.applied_version(), primary_graph.CurrentVersion());
  EXPECT_EQ(replica.graph()->NumVerticesTotal(),
            primary_graph.NumVerticesTotal());
  EXPECT_EQ(replica.graph()->NumEdgesTotal(), primary_graph.NumEdgesTotal());

  client.Close();
  replica.Stop();
  primary.Drain(2.0);
}

// A replica bootstrapping while the primary's delta-merge compactor is
// swapping segments must still get an exact cut: CollectReplicationBacklog
// and the compaction swap serialize on checkpoint_mu_ + the commit mutex,
// so the snapshot either fully precedes or fully follows every swap and
// the version counter (which compaction never advances) stays gap-free.
// (Regression: an unserialized swap let the bootstrap snapshot capture a
// half-installed relation, and the replica diverged from the primary.)
TEST(ReplicationTest, BootstrapDuringCompactionStormIsConsistent) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  Server primary(&primary_graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port()));

  std::atomic<bool> stop{false};
  std::thread compactor([&primary_graph, &stop] {
    CompactionOptions opts;
    opts.force = true;
    while (!stop.load(std::memory_order_acquire)) {
      primary_graph.CompactRelations(opts);
      primary_graph.PruneVersions();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Bootstrap mid-storm, with commits continuing before and after.
  uint64_t last_commit = 0;
  for (int i = 1; i <= 3; ++i) {
    last_commit = CommitIU(&client, 1 + (i % 3), /*seed=*/300 + i);
  }
  Replica replica(ReplicaOpts(primary.port(), "midstorm"));
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();
  for (int i = 4; i <= 8; ++i) {
    last_commit = CommitIU(&client, 1 + (i % 3), /*seed=*/300 + i);
  }
  ASSERT_GT(last_commit, 0u);

  ASSERT_TRUE(replica.WaitForVersion(last_commit, /*timeout_s=*/10.0))
      << "replica stuck at v" << replica.applied_version() << ": "
      << replica.last_error();
  stop.store(true, std::memory_order_release);
  compactor.join();

  EXPECT_EQ(replica.applied_version(), primary_graph.CurrentVersion());
  EXPECT_EQ(replica.graph()->NumVerticesTotal(),
            primary_graph.NumVerticesTotal());

  // NumEdgesTotal counts only folded storage (base CSR + segments), so the
  // raw counters legitimately diverge here: the storming primary kept
  // folding post-bootstrap commits into segments while the replica's
  // counter froze at its bootstrap cut. Fold both sides at the same — now
  // quiescent — version and the counters must agree exactly.
  CompactionOptions fold;
  fold.force = true;
  primary_graph.CompactRelations(fold);
  replica.graph()->CompactRelations(fold);
  EXPECT_EQ(replica.graph()->NumEdgesTotal(), primary_graph.NumEdgesTotal());

  // The real consistency claim: edge-for-edge identical content, however
  // each side happens to lay it out.
  EXPECT_EQ(GraphFingerprint(*replica.graph()),
            GraphFingerprint(primary_graph));

  client.Close();
  replica.Stop();
  primary.Drain(2.0);
}

TEST(ReplicationTest, DurableReplicaRestartCatchesUpFromWal) {
  TempDir primary_dir;
  TempDir replica_dir;
  auto primary_graph = std::make_unique<Graph>();
  SnbData data = SmallSnb(primary_graph.get());
  ASSERT_TRUE(
      primary_graph->EnableDurability(primary_dir.path(), DurabilityOptions{})
          .ok());
  Server primary(primary_graph.get(), &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port()));

  uint64_t first_commit;
  {
    Replica::Options opts = ReplicaOpts(primary.port(), "durable-replica");
    opts.data_dir = replica_dir.path();
    Replica replica(opts);
    ASSERT_TRUE(replica.Start().ok()) << replica.last_error();
    first_commit = CommitIU(&client, 1, /*seed=*/1);
    ASSERT_TRUE(replica.WaitForVersion(first_commit, 10.0));
    replica.Stop();  // replica leaves; its directory keeps v<first_commit>
  }

  // Commits the replica missed while down.
  uint64_t last_commit = 0;
  for (int i = 0; i < 3; ++i) {
    last_commit = CommitIU(&client, 2, /*seed=*/50 + i);
  }

  // Restart: local recovery first, then WAL-only catch-up from its own
  // applied version (the primary has not checkpointed past it).
  Replica::Options opts = ReplicaOpts(primary.port(), "durable-replica");
  opts.data_dir = replica_dir.path();
  Replica replica(opts);
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();
  EXPECT_GE(replica.applied_version(), first_commit);
  ASSERT_TRUE(replica.WaitForVersion(last_commit, 10.0))
      << "stuck at v" << replica.applied_version();
  EXPECT_EQ(replica.graph()->NumVerticesTotal(),
            primary_graph->NumVerticesTotal());

  replica.Stop();
  client.Close();
  primary.Drain(2.0);
}

TEST(ReplicationTest, SemisyncCommitRequiresReplicaAck) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  ServiceConfig cfg;
  cfg.min_replica_acks = 1;
  cfg.replica_ack_timeout_seconds = 0.3;
  Server primary(&primary_graph, &data, cfg);
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port()));

  // No replica connected: the commit lands locally but the ack wait times
  // out, so the client is explicitly told it was NOT acknowledged.
  QueryResponse resp;
  ASSERT_TRUE(client.RunIU(1, /*seed=*/1, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kError);
  EXPECT_NE(resp.message.find("not acknowledged"), std::string::npos)
      << resp.message;
  EXPECT_GE(primary.stats().semisync_timeouts.load(), 1u);

  // With a live replica the same update is acknowledged.
  Replica replica(ReplicaOpts(primary.port()));
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();
  ASSERT_TRUE(client.RunIU(2, /*seed=*/2, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_GE(replica.applied_version(), resp.snapshot_version);

  client.Close();
  replica.Stop();
  primary.Drain(2.0);
}

TEST(ReplicationTest, PerReplicaLagExportedInStats) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  Server primary(&primary_graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;

  Replica replica(ReplicaOpts(primary.port(), "lag-probe"));
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();

  // The reaper refreshes replication stats on its 50ms cadence; the
  // heartbeat/ack loop keeps last-ack age fresh.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(primary.stats().replicas_connected.load(), 1u);
  {
    std::lock_guard<std::mutex> lk(primary.stats().replica_mu);
    ASSERT_EQ(primary.stats().replicas.size(), 1u);
    const auto& info = primary.stats().replicas[0];
    EXPECT_EQ(info.name, "lag-probe");
    EXPECT_TRUE(info.connected);
    EXPECT_EQ(info.applied_version, primary_graph.CurrentVersion());
    EXPECT_EQ(info.lag_commits, 0u);
    EXPECT_LT(info.last_ack_age_s, 5.0);
  }
  std::string rendered = primary.stats().ToString();
  EXPECT_NE(rendered.find("replication:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("lag-probe"), std::string::npos) << rendered;

  replica.Stop();
  primary.Drain(2.0);
}

TEST(ReplicationTest, RywFloorAnswersLaggingWhenBehind) {
  Graph graph;
  SnbData data = SmallSnb(&graph);
  ServiceConfig cfg;
  cfg.ryw_wait_ms = 20;
  Server server(&graph, &data, cfg);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // A floor the graph can never reach within the wait bound: the server
  // must answer LAGGING (with its applied version) instead of serving a
  // state older than the client's write.
  QueryRequest req;
  req.query_id = client.AllocQueryId();
  req.kind = QueryKind::kSleep;
  req.seed = 0;
  req.min_version = graph.CurrentVersion() + 1000;
  QueryResponse resp;
  ASSERT_TRUE(client.Run(req, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kLagging) << resp.message;
  EXPECT_EQ(resp.snapshot_version, graph.CurrentVersion());
  EXPECT_GE(server.stats().ryw_lagging.load(), 1u);

  // A satisfiable floor works and executes at >= the floor.
  req.query_id = client.AllocQueryId();
  req.min_version = graph.CurrentVersion();
  ASSERT_TRUE(client.Run(req, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_GE(resp.snapshot_version, req.min_version);

  client.Close();
  server.Drain(2.0);
}

TEST(ReplicationTest, RoutedClientFansOutAndHonorsReadYourWrites) {
  Graph primary_graph;
  SnbData data = SmallSnb(&primary_graph);
  Server primary(&primary_graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary.Start(&error)) << error;

  Replica r1(ReplicaOpts(primary.port(), "r1"));
  Replica r2(ReplicaOpts(primary.port(), "r2"));
  ASSERT_TRUE(r1.Start().ok()) << r1.last_error();
  ASSERT_TRUE(r2.Start().ok()) << r2.last_error();

  SnbData d1 = RebuildSnbData(r1.graph());
  SnbData d2 = RebuildSnbData(r2.graph());
  ServiceConfig rcfg;
  rcfg.replica = true;
  Server s1(r1.graph(), &d1, rcfg);
  Server s2(r2.graph(), &d2, rcfg);
  ASSERT_TRUE(s1.Start(&error)) << error;
  ASSERT_TRUE(s2.Start(&error)) << error;

  RoutedClient::Options ropts;
  ropts.primary = Endpoint{"127.0.0.1", primary.port()};
  ropts.replicas = {Endpoint{"127.0.0.1", s1.port()},
                    Endpoint{"127.0.0.1", s2.port()}};
  RoutedClient router(ropts);

  // Reads fan out round-robin across the two replicas.
  QueryResponse resp;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(router.RunSleep(/*millis=*/0, &resp)) << router.last_error();
    EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  }
  EXPECT_GE(s1.stats().queries_received.load(), 2u);
  EXPECT_GE(s2.stats().queries_received.load(), 2u);
  EXPECT_EQ(primary.stats().queries_received.load(), 0u);

  // Updates go to the primary and mint the RYW token; every subsequent
  // read — wherever it lands — observes at least the token's version.
  ASSERT_TRUE(router.RunIU(1, /*seed=*/5, &resp)) << router.last_error();
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
  uint64_t token = router.ryw_token();
  EXPECT_GT(token, 0u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(router.RunSleep(/*millis=*/0, &resp)) << router.last_error();
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
    EXPECT_GE(resp.snapshot_version, token)
        << "read observed a state older than the client's own write";
  }

  router.Close();
  s1.Drain(2.0);
  s2.Drain(2.0);
  r1.Stop();
  r2.Stop();
  primary.Drain(2.0);
}

TEST(ReplicationTest, PromotedReplicaAcceptsWrites) {
  auto primary_graph = std::make_unique<Graph>();
  SnbData data = SmallSnb(primary_graph.get());
  auto primary = std::make_unique<Server>(primary_graph.get(), &data,
                                          ServiceConfig{});
  std::string error;
  ASSERT_TRUE(primary->Start(&error)) << error;

  Replica replica(ReplicaOpts(primary->port(), "successor"));
  ASSERT_TRUE(replica.Start().ok()) << replica.last_error();
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", primary->port()));
    uint64_t commit = CommitIU(&client, 1, /*seed=*/1);
    ASSERT_TRUE(replica.WaitForVersion(commit, 10.0));
  }

  SnbData rdata = RebuildSnbData(replica.graph());
  ServiceConfig rcfg;
  rcfg.replica = true;
  Server replica_server(replica.graph(), &rdata, rcfg);
  ASSERT_TRUE(replica_server.Start(&error)) << error;

  // "Failover": the primary dies, the replica is promoted.
  uint64_t applied_at_promotion = replica.applied_version();
  primary->Drain(1.0);
  primary.reset();
  primary_graph.reset();
  ASSERT_TRUE(replica.Promote().ok());
  replica_server.PromoteToPrimary();
  EXPECT_FALSE(replica_server.replica_mode());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", replica_server.port()));
  QueryResponse resp;
  ASSERT_TRUE(client.RunIU(1, /*seed=*/9, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_GT(resp.snapshot_version, applied_at_promotion);
  client.Close();
  replica_server.Drain(2.0);
}

}  // namespace
}  // namespace ges
