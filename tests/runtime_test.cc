// Runtime-component tests: intra-query parallel expansion and the
// vectorized filter kernel must be exact optimizations (identical results).
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SnbFixture;

TEST(IntraQueryParallelTest, ParallelExpandMatchesSequential) {
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  // A multi-hop expansion over many source rows (the parallelized path).
  PlanBuilder b("t");
  b.ScanByLabel("p", ctx.s.person)
      .Expand("p", "f", {ctx.knows}, 1, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .GetProperty("p", ctx.p_id, ValueType::kInt64, "pid")
      .GetProperty("f", ctx.p_id, ValueType::kInt64, "fid")
      .Aggregate({"pid"}, {AggSpec{AggSpec::kCount, "", "nf"}})
      .OrderBy({{"pid", true}})
      .Output({"pid", "nf"});
  Plan plan = b.Build();

  ExecOptions seq;
  seq.intra_query_threads = 1;
  ExecOptions par;
  par.intra_query_threads = 4;
  for (ExecMode mode :
       {ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    auto a = OrderedRows(Executor(mode, seq).Run(plan, view).table);
    auto c = OrderedRows(Executor(mode, par).Run(plan, view).table);
    EXPECT_EQ(a, c) << ExecModeName(mode);
    EXPECT_GT(a.size(), 0u);
  }
}

TEST(IntraQueryParallelTest, WorkloadQueriesUnchanged) {
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ParamGen gen(&fx.graph, &fx.data, 404);
  GraphView view(&fx.graph);
  ExecOptions par;
  par.intra_query_threads = 4;
  for (int k : {1, 5, 9, 10}) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIC(k, ctx, p);
    auto a = OrderedRows(
        Executor(ExecMode::kFactorizedFused).Run(plan, view).table);
    auto c = OrderedRows(
        Executor(ExecMode::kFactorizedFused, par).Run(plan, view).table);
    EXPECT_EQ(a, c) << "IC" << k;
  }
}

TEST(VectorizedFilterTest, KernelMatchesGenericEvaluation) {
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  // One plan per comparison operator over an int64 property.
  for (ExprOp op : {ExprOp::kEq, ExprOp::kNe, ExprOp::kLt, ExprOp::kLe,
                    ExprOp::kGt, ExprOp::kGe}) {
    PlanBuilder b("t");
    b.ScanByLabel("m", ctx.s.post)
        .GetProperty("m", ctx.p_length, ValueType::kInt64, "len")
        .Filter(Expr::Cmp(op, Expr::Col("len"), Expr::Lit(Value::Int(120))))
        .GetProperty("m", ctx.p_id, ValueType::kInt64, "mid")
        .OrderBy({{"mid", true}})
        .Output({"mid", "len"});
    Plan plan = b.Build();
    ExecOptions with, without;
    without.vectorized_filter = false;
    auto a = OrderedRows(
        Executor(ExecMode::kFactorized, with).Run(plan, view).table);
    auto c = OrderedRows(
        Executor(ExecMode::kFactorized, without).Run(plan, view).table);
    EXPECT_EQ(a, c) << "op " << static_cast<int>(op);
    EXPECT_GT(a.size(), 0u);
  }
}

TEST(VectorizedFilterTest, DateColumnAgainstIntLiteral) {
  // Regression: DATE-typed columns must compare numerically with integer
  // literals in both the generic and the vectorized paths.
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  PlanBuilder b("t");
  b.ScanByLabel("m", ctx.s.post)
      .GetProperty("m", ctx.p_creation, ValueType::kDate, "d")
      .Filter(Expr::Lt(Expr::Col("d"), Expr::Lit(Value::Int(kSimEnd))))
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "n"}})
      .Output({"n"});
  Plan plan = b.Build();
  for (ExecMode mode : {ExecMode::kVolcano, ExecMode::kFlat,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, view);
    EXPECT_EQ(r.table.At(0, 0).AsInt(),
              static_cast<int64_t>(fx.data.posts.size()))
        << ExecModeName(mode);
  }
}

}  // namespace
}  // namespace ges
