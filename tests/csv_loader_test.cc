// CSV import/export tests: parsing, loading, round-tripping.
#include "storage/csv_loader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "executor/executor.h"
#include "tests/test_util.h"

namespace ges {
namespace {

TEST(CsvParseTest, SplitLine) {
  EXPECT_EQ(SplitCsvLine("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a||c", '|'),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine("solo", '|'), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(SplitCsvLine("a,b", ','), (std::vector<std::string>{"a", "b"}));
  // Trailing \r stripped.
  EXPECT_EQ(SplitCsvLine("a|b\r", '|'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParseTest, ParseTypedValues) {
  Value v;
  ASSERT_TRUE(ParseCsvValue("42", ValueType::kInt64, &v).ok());
  EXPECT_EQ(v, Value::Int(42));
  ASSERT_TRUE(ParseCsvValue("2.5", ValueType::kDouble, &v).ok());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
  ASSERT_TRUE(ParseCsvValue("hello", ValueType::kString, &v).ok());
  EXPECT_EQ(v.AsString(), "hello");
  ASSERT_TRUE(ParseCsvValue("true", ValueType::kBool, &v).ok());
  EXPECT_TRUE(v.AsBool());
}

TEST(CsvParseTest, ParseIsoDates) {
  Value v;
  ASSERT_TRUE(ParseCsvValue("1970-01-01", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), 0);
  ASSERT_TRUE(ParseCsvValue("1970-01-02", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), 86'400'000LL);
  ASSERT_TRUE(ParseCsvValue("2010-01-01", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), kSimStart);
  ASSERT_TRUE(ParseCsvValue("2013-01-01", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), kSimEnd);
  // Leap day.
  ASSERT_TRUE(ParseCsvValue("1972-03-01", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), (365LL * 2 + 31 + 29) * 86'400'000LL);
  // Raw millis fall through.
  ASSERT_TRUE(ParseCsvValue("123456789", ValueType::kDate, &v).ok());
  EXPECT_EQ(v.AsInt(), 123456789);
}

class CsvGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog& c = graph_.catalog();
    person_ = c.AddVertexLabel("PERSON");
    knows_ = c.AddEdgeLabel("KNOWS");
    c.AddProperty(person_, "id", ValueType::kInt64);
    name_ = c.AddProperty(person_, "name", ValueType::kString);
    age_ = c.AddProperty(person_, "age", ValueType::kInt64);
    graph_.RegisterRelation(person_, knows_, person_, /*has_stamp=*/true);
  }

  Graph graph_;
  LabelId person_, knows_;
  PropertyId name_, age_;
};

TEST_F(CsvGraphTest, LoadVerticesAndEdges) {
  std::istringstream people(
      "id|name|age\n"
      "10|ada|36\n"
      "20|alan|41\n"
      "30|grace|85\n");
  size_t n = 0;
  ASSERT_TRUE(LoadVerticesCsv(people, person_, &graph_, &n).ok());
  EXPECT_EQ(n, 3u);

  std::istringstream knows(
      "Person.id|Person.id|since\n"
      "10|20|2001\n"
      "20|30|2002\n");
  size_t m = 0;
  ASSERT_TRUE(LoadEdgesCsv(knows, knows_, person_, person_, &graph_, &m).ok());
  EXPECT_EQ(m, 2u);
  graph_.FinalizeBulk();

  Version v = graph_.CurrentVersion();
  VertexId ada = graph_.FindByExtId(person_, 10, v);
  ASSERT_NE(ada, kInvalidVertex);
  EXPECT_EQ(graph_.GetProperty(ada, name_, v), Value::String("ada"));
  EXPECT_EQ(graph_.GetProperty(ada, age_, v), Value::Int(36));
  RelationId rel =
      graph_.FindRelation(person_, knows_, person_, Direction::kOut);
  AdjSpan s = graph_.Neighbors(rel, ada, v);
  ASSERT_EQ(s.size, 1u);
  EXPECT_EQ(s.ids[0], graph_.FindByExtId(person_, 20, v));
  ASSERT_NE(s.stamps, nullptr);
  EXPECT_EQ(s.stamps[0], 2001);
}

TEST_F(CsvGraphTest, ErrorOnMissingIdColumn) {
  std::istringstream in("name|age\nada|36\n");
  size_t n = 0;
  EXPECT_FALSE(LoadVerticesCsv(in, person_, &graph_, &n).ok());
}

TEST_F(CsvGraphTest, ErrorOnUnknownProperty) {
  std::istringstream in("id|nope\n1|x\n");
  size_t n = 0;
  EXPECT_FALSE(LoadVerticesCsv(in, person_, &graph_, &n).ok());
}

TEST_F(CsvGraphTest, ErrorOnFieldCountMismatch) {
  std::istringstream in("id|name|age\n1|ada\n");
  size_t n = 0;
  EXPECT_FALSE(LoadVerticesCsv(in, person_, &graph_, &n).ok());
}

TEST_F(CsvGraphTest, ErrorOnUnknownEdgeEndpoint) {
  std::istringstream people("id|name|age\n10|ada|36\n");
  size_t n = 0;
  ASSERT_TRUE(LoadVerticesCsv(people, person_, &graph_, &n).ok());
  std::istringstream edges("a|b\n10|99\n");
  size_t m = 0;
  EXPECT_FALSE(
      LoadEdgesCsv(edges, knows_, person_, person_, &graph_, &m).ok());
}

TEST_F(CsvGraphTest, RoundTripPreservesGraph) {
  std::istringstream people(
      "id|name|age\n1|a|10\n2|b|20\n3|c|30\n");
  size_t n = 0;
  ASSERT_TRUE(LoadVerticesCsv(people, person_, &graph_, &n).ok());
  std::istringstream edges("s|d|t\n1|2|7\n2|3|8\n3|1|9\n");
  size_t m = 0;
  ASSERT_TRUE(
      LoadEdgesCsv(edges, knows_, person_, person_, &graph_, &m).ok());
  graph_.FinalizeBulk();

  // Export.
  std::ostringstream people_out, edges_out;
  ASSERT_TRUE(ExportVerticesCsv(graph_, person_, people_out).ok());
  ASSERT_TRUE(
      ExportEdgesCsv(graph_, knows_, person_, person_, edges_out).ok());

  // Re-import into a fresh graph with the same schema.
  Graph copy;
  Catalog& c = copy.catalog();
  LabelId person = c.AddVertexLabel("PERSON");
  LabelId knows = c.AddEdgeLabel("KNOWS");
  c.AddProperty(person, "id", ValueType::kInt64);
  c.AddProperty(person, "name", ValueType::kString);
  c.AddProperty(person, "age", ValueType::kInt64);
  copy.RegisterRelation(person, knows, person, true);
  std::istringstream people_in(people_out.str());
  std::istringstream edges_in(edges_out.str());
  ASSERT_TRUE(LoadVerticesCsv(people_in, person, &copy, &n).ok());
  EXPECT_EQ(n, 3u);
  ASSERT_TRUE(LoadEdgesCsv(edges_in, knows, person, person, &copy, &m).ok());
  EXPECT_EQ(m, 3u);
  copy.FinalizeBulk();

  // Structures agree.
  Version v = copy.CurrentVersion();
  EXPECT_EQ(copy.NumVertices(person, v), 3u);
  EXPECT_EQ(copy.NumEdgesTotal(), 3u);
  RelationId rel = copy.FindRelation(person, knows, person, Direction::kOut);
  VertexId a = copy.FindByExtId(person, 1, v);
  AdjSpan s = copy.Neighbors(rel, a, v);
  ASSERT_EQ(s.size, 1u);
  EXPECT_EQ(s.stamps[0], 7);
}

TEST(CsvSnbTest, ExportedSnbEdgesMatchGraph) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  const SnbSchema& s = fx.data.schema;
  std::ostringstream out;
  ASSERT_TRUE(ExportEdgesCsv(fx.graph, s.knows, s.person, s.person, out).ok());
  // Header + one line per directed knows edge.
  std::istringstream in(out.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  RelationId knows = fx.graph.FindRelation(s.person, s.knows, s.person,
                                           Direction::kOut);
  size_t expected = 0;
  for (VertexId p : fx.data.persons) {
    expected += fx.graph.Neighbors(knows, p, 0).size;
  }
  EXPECT_EQ(lines, expected + 1);
}

}  // namespace
}  // namespace ges
