// GESSNAP3/GESSNAP4 integrity tests: per-section CRC32C framing,
// corruption and truncation detection with section-naming errors, the V4
// delta+varint edge codec and compacted-segment manifest, legacy format
// loading, and snapshot-version restoration for recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "storage/serialization.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

std::string SaveV3(const Graph& g) {
  std::stringstream buf;
  EXPECT_TRUE(SaveGraph(g, buf, SnapshotFormat::kV3).ok());
  return buf.str();
}

std::string SaveV4(const Graph& g) {
  std::stringstream buf;
  EXPECT_TRUE(SaveGraph(g, buf, SnapshotFormat::kV4).ok());
  return buf.str();
}

// Neighbor set of `v` as (ext_id, stamp) pairs, sorted — internal ids are
// not stable across save/load, external ids are.
std::vector<std::pair<int64_t, int64_t>> EdgeSet(const Graph& g,
                                                 RelationId rel, VertexId v,
                                                 Version snap) {
  AdjScratch scratch;
  AdjSpan span = g.Neighbors(rel, v, snap, &scratch);
  std::vector<std::pair<int64_t, int64_t>> out;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] == kInvalidVertex) continue;
    out.emplace_back(g.ExtIdOf(span.ids[i], snap),
                     span.stamps != nullptr ? span.stamps[i] : 0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status LoadBytes(const std::string& bytes, Graph* g) {
  std::stringstream buf(bytes);
  return LoadGraph(buf, g);
}

TEST(SnapshotIntegrityTest, DefaultFormatIsV4) {
  TinyGraph tiny;
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(*tiny.graph, buf).ok());
  EXPECT_EQ(buf.str().substr(0, 8), "GESSNAP4");
}

TEST(SnapshotIntegrityTest, V3RoundTrips) {
  TinyGraph tiny;
  std::string bytes = SaveV3(*tiny.graph);
  Graph loaded;
  Status s = LoadBytes(bytes, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
  EXPECT_EQ(loaded.NumEdgesTotal(), tiny.graph->NumEdgesTotal());
  Version v = loaded.CurrentVersion();
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  ASSERT_NE(m0, kInvalidVertex);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(140));
}

TEST(SnapshotIntegrityTest, RestoresSnapshotVersion) {
  TinyGraph tiny;
  for (int i = 0; i < 3; ++i) {
    auto txn = tiny.graph->BeginWrite({tiny.messages[i]});
    txn->SetProperty(tiny.messages[i], tiny.len, Value::Int(i));
    ASSERT_NE(txn->Commit(), 0u);
  }
  ASSERT_EQ(tiny.graph->CurrentVersion(), 3u);

  Graph loaded;
  ASSERT_TRUE(LoadBytes(SaveV3(*tiny.graph), &loaded).ok());
  // Recovery depends on this: WAL transactions with commit_version <= 3
  // must be skipped after loading this snapshot.
  EXPECT_EQ(loaded.CurrentVersion(), 3u);
}

TEST(SnapshotIntegrityTest, TruncationAnywhereIsDetected) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  // Sample a spread of truncation points (every byte would be slow on the
  // bigger sections; boundaries and interiors are all hit).
  for (size_t cut = 8; cut < bytes.size();
       cut += 1 + (bytes.size() - cut) / 97) {
    Graph g;
    Status s = LoadBytes(bytes.substr(0, cut), &g);
    EXPECT_FALSE(s.ok()) << "cut at byte " << cut;
  }
}

TEST(SnapshotIntegrityTest, TruncationErrorNamesSection) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  Graph g;
  Status s = LoadBytes(bytes.substr(0, bytes.size() - 3), &g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("section"), std::string::npos) << s.message();
}

TEST(SnapshotIntegrityTest, BitFlipIsDetectedAndNamesSection) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  // Flip one payload byte in a handful of spots across the file (past the
  // magic, which has its own check).
  for (size_t off = 9; off < bytes.size();
       off += 1 + (bytes.size() - off) / 53) {
    std::string damaged = bytes;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    Graph g;
    Status s = LoadBytes(damaged, &g);
    EXPECT_FALSE(s.ok()) << "flip at byte " << off;
    if (!s.ok()) {
      EXPECT_NE(s.message().find("section"), std::string::npos)
          << "flip at byte " << off << ": " << s.message();
    }
  }
}

TEST(SnapshotIntegrityTest, LegacyFormatsStillLoad) {
  TinyGraph tiny;
  for (SnapshotFormat f : {SnapshotFormat::kV1, SnapshotFormat::kV2,
                           SnapshotFormat::kV3}) {
    std::stringstream buf;
    ASSERT_TRUE(SaveGraph(*tiny.graph, buf, f).ok());
    const std::string magic = buf.str().substr(0, 8);
    const char* want = f == SnapshotFormat::kV1   ? "GESSNAP1"
                       : f == SnapshotFormat::kV2 ? "GESSNAP2"
                                                  : "GESSNAP3";
    EXPECT_EQ(magic, want);
    Graph loaded;
    Status s = LoadGraph(buf, &loaded);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
    EXPECT_EQ(loaded.NumEdgesTotal(), tiny.graph->NumEdgesTotal());
  }
}

TEST(SnapshotIntegrityTest, V3CapturesCommittedOverlayState) {
  TinyGraph tiny;
  {
    auto txn = tiny.graph->BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 777).ok());
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(555));
    ASSERT_NE(txn->Commit(), 0u);
  }
  Graph loaded;
  ASSERT_TRUE(LoadBytes(SaveV3(*tiny.graph), &loaded).ok());
  Version v = loaded.CurrentVersion();
  EXPECT_EQ(v, 1u);
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  VertexId p0 = loaded.FindByExtId(tiny.person, 0, v);
  EXPECT_EQ(loaded.Degree(knows, p0, v), 3u);
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(555));
}

TEST(SnapshotIntegrityTest, V4RoundTripsEdgesStampsAndOverlay) {
  TinyGraph tiny;
  {
    auto txn = tiny.graph->BeginWrite(
        {tiny.persons[0], tiny.persons[1], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 777).ok());
    ASSERT_TRUE(
        txn->RemoveEdge(tiny.knows, tiny.persons[0], tiny.persons[1]).ok());
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(555));
    ASSERT_NE(txn->Commit(), 0u);
  }
  Graph loaded;
  Status s = LoadBytes(SaveV4(*tiny.graph), &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(loaded.CurrentVersion(), tiny.graph->CurrentVersion());
  EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  ASSERT_NE(knows, kInvalidRelation);
  Version sv = tiny.graph->CurrentVersion();
  Version lv = loaded.CurrentVersion();
  for (int i = 0; i < 4; ++i) {
    VertexId lp = loaded.FindByExtId(tiny.person, i, lv);
    ASSERT_NE(lp, kInvalidVertex);
    // The codec stores ext-id gaps + per-source stamp deltas; the decoded
    // (ext_id, stamp) multiset must match exactly, tombstone pruned.
    EXPECT_EQ(EdgeSet(loaded, knows, lp, lv),
              EdgeSet(*tiny.graph, tiny.knows_out, tiny.persons[i], sv))
        << "person " << i;
  }
  VertexId m0 = loaded.FindByExtId(tiny.message, 0, lv);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), lv),
            Value::Int(555));
}

TEST(SnapshotIntegrityTest, V4ManifestRebuildsCompactedSegments) {
  TinyGraph tiny;
  CompactionOptions copts;
  copts.force = true;
  copts.only.push_back(tiny.knows_out);
  CompactionStats cs = tiny.graph->CompactRelations(copts);
  ASSERT_EQ(cs.relations_compacted, 1u);
  ASSERT_TRUE(tiny.graph->RelationCompacted(tiny.knows_out));

  Graph loaded;
  Status s = LoadBytes(SaveV4(*tiny.graph), &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  // The manifest names KNOWS as compacted; the loader must rebuild its
  // segment (internal ids differ, so segments cannot ship in the file).
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  RelationId creator = loaded.FindRelation(tiny.message, tiny.has_creator,
                                           tiny.person, Direction::kOut);
  EXPECT_TRUE(loaded.RelationCompacted(knows));
  EXPECT_FALSE(loaded.RelationCompacted(creator));
  Version sv = tiny.graph->CurrentVersion();
  Version lv = loaded.CurrentVersion();
  for (int i = 0; i < 4; ++i) {
    VertexId lp = loaded.FindByExtId(tiny.person, i, lv);
    EXPECT_EQ(EdgeSet(loaded, knows, lp, lv),
              EdgeSet(*tiny.graph, tiny.knows_out, tiny.persons[i], sv))
        << "person " << i;
  }
}

TEST(SnapshotIntegrityTest, V4TruncationAnywhereIsDetected) {
  TinyGraph tiny;
  const std::string bytes = SaveV4(*tiny.graph);
  for (size_t cut = 8; cut < bytes.size();
       cut += 1 + (bytes.size() - cut) / 97) {
    Graph g;
    Status s = LoadBytes(bytes.substr(0, cut), &g);
    EXPECT_FALSE(s.ok()) << "cut at byte " << cut;
  }
}

TEST(SnapshotIntegrityTest, V4BitFlipIsDetectedAndNamesSection) {
  TinyGraph tiny;
  const std::string bytes = SaveV4(*tiny.graph);
  for (size_t off = 9; off < bytes.size();
       off += 1 + (bytes.size() - off) / 53) {
    std::string damaged = bytes;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    Graph g;
    Status s = LoadBytes(damaged, &g);
    EXPECT_FALSE(s.ok()) << "flip at byte " << off;
    if (!s.ok()) {
      EXPECT_NE(s.message().find("section"), std::string::npos)
          << "flip at byte " << off << ": " << s.message();
    }
  }
}

}  // namespace
}  // namespace ges
