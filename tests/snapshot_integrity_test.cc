// GESSNAP3 integrity tests: per-section CRC32C framing, corruption and
// truncation detection with section-naming errors, legacy format loading,
// and snapshot-version restoration for recovery.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "storage/serialization.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

std::string SaveV3(const Graph& g) {
  std::stringstream buf;
  EXPECT_TRUE(SaveGraph(g, buf, SnapshotFormat::kV3).ok());
  return buf.str();
}

Status LoadBytes(const std::string& bytes, Graph* g) {
  std::stringstream buf(bytes);
  return LoadGraph(buf, g);
}

TEST(SnapshotIntegrityTest, DefaultFormatIsV3) {
  TinyGraph tiny;
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(*tiny.graph, buf).ok());
  EXPECT_EQ(buf.str().substr(0, 8), "GESSNAP3");
}

TEST(SnapshotIntegrityTest, V3RoundTrips) {
  TinyGraph tiny;
  std::string bytes = SaveV3(*tiny.graph);
  Graph loaded;
  Status s = LoadBytes(bytes, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
  EXPECT_EQ(loaded.NumEdgesTotal(), tiny.graph->NumEdgesTotal());
  Version v = loaded.CurrentVersion();
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  ASSERT_NE(m0, kInvalidVertex);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(140));
}

TEST(SnapshotIntegrityTest, RestoresSnapshotVersion) {
  TinyGraph tiny;
  for (int i = 0; i < 3; ++i) {
    auto txn = tiny.graph->BeginWrite({tiny.messages[i]});
    txn->SetProperty(tiny.messages[i], tiny.len, Value::Int(i));
    ASSERT_NE(txn->Commit(), 0u);
  }
  ASSERT_EQ(tiny.graph->CurrentVersion(), 3u);

  Graph loaded;
  ASSERT_TRUE(LoadBytes(SaveV3(*tiny.graph), &loaded).ok());
  // Recovery depends on this: WAL transactions with commit_version <= 3
  // must be skipped after loading this snapshot.
  EXPECT_EQ(loaded.CurrentVersion(), 3u);
}

TEST(SnapshotIntegrityTest, TruncationAnywhereIsDetected) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  // Sample a spread of truncation points (every byte would be slow on the
  // bigger sections; boundaries and interiors are all hit).
  for (size_t cut = 8; cut < bytes.size();
       cut += 1 + (bytes.size() - cut) / 97) {
    Graph g;
    Status s = LoadBytes(bytes.substr(0, cut), &g);
    EXPECT_FALSE(s.ok()) << "cut at byte " << cut;
  }
}

TEST(SnapshotIntegrityTest, TruncationErrorNamesSection) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  Graph g;
  Status s = LoadBytes(bytes.substr(0, bytes.size() - 3), &g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("section"), std::string::npos) << s.message();
}

TEST(SnapshotIntegrityTest, BitFlipIsDetectedAndNamesSection) {
  TinyGraph tiny;
  const std::string bytes = SaveV3(*tiny.graph);
  // Flip one payload byte in a handful of spots across the file (past the
  // magic, which has its own check).
  for (size_t off = 9; off < bytes.size();
       off += 1 + (bytes.size() - off) / 53) {
    std::string damaged = bytes;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    Graph g;
    Status s = LoadBytes(damaged, &g);
    EXPECT_FALSE(s.ok()) << "flip at byte " << off;
    if (!s.ok()) {
      EXPECT_NE(s.message().find("section"), std::string::npos)
          << "flip at byte " << off << ": " << s.message();
    }
  }
}

TEST(SnapshotIntegrityTest, LegacyFormatsStillLoad) {
  TinyGraph tiny;
  for (SnapshotFormat f : {SnapshotFormat::kV1, SnapshotFormat::kV2}) {
    std::stringstream buf;
    ASSERT_TRUE(SaveGraph(*tiny.graph, buf, f).ok());
    const std::string magic = buf.str().substr(0, 8);
    EXPECT_EQ(magic, f == SnapshotFormat::kV1 ? "GESSNAP1" : "GESSNAP2");
    Graph loaded;
    Status s = LoadGraph(buf, &loaded);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
    EXPECT_EQ(loaded.NumEdgesTotal(), tiny.graph->NumEdgesTotal());
  }
}

TEST(SnapshotIntegrityTest, V3CapturesCommittedOverlayState) {
  TinyGraph tiny;
  {
    auto txn = tiny.graph->BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 777).ok());
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(555));
    ASSERT_NE(txn->Commit(), 0u);
  }
  Graph loaded;
  ASSERT_TRUE(LoadBytes(SaveV3(*tiny.graph), &loaded).ok());
  Version v = loaded.CurrentVersion();
  EXPECT_EQ(v, 1u);
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  VertexId p0 = loaded.FindByExtId(tiny.person, 0, v);
  EXPECT_EQ(loaded.Degree(knows, p0, v), 3u);
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(555));
}

}  // namespace
}  // namespace ges
