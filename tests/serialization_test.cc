// Binary snapshot tests: save/load round trips, including committed MVCC
// state and query-level equivalence on the reloaded graph.
#include "storage/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SortedRows;
using testutil::TinyGraph;

TEST(SerializationTest, RoundTripTinyGraph) {
  TinyGraph tiny;
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(*tiny.graph, buf).ok());

  Graph loaded;
  Status s = LoadGraph(buf, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();

  EXPECT_EQ(loaded.NumVerticesTotal(), tiny.graph->NumVerticesTotal());
  EXPECT_EQ(loaded.NumEdgesTotal(), tiny.graph->NumEdgesTotal());
  // Catalog round-tripped.
  EXPECT_EQ(loaded.catalog().VertexLabel("PERSON"), tiny.person);
  EXPECT_EQ(loaded.catalog().EdgeLabel("KNOWS"), tiny.knows);
  // Properties preserved.
  Version v = loaded.CurrentVersion();
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  ASSERT_NE(m0, kInvalidVertex);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(140));
  // Adjacency with stamps preserved.
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  VertexId p0 = loaded.FindByExtId(tiny.person, 0, v);
  AdjSpan span = loaded.Neighbors(knows, p0, v);
  ASSERT_EQ(span.size, 2u);
  ASSERT_NE(span.stamps, nullptr);
  EXPECT_EQ(span.stamps[0], 101);
}

TEST(SerializationTest, CapturesCommittedMvccState) {
  TinyGraph tiny;
  {
    auto txn = tiny.graph->BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 777).ok());
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(555));
    txn->Commit();
  }
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(*tiny.graph, buf).ok());
  Graph loaded;
  ASSERT_TRUE(LoadGraph(buf, &loaded).ok());

  Version v = loaded.CurrentVersion();
  RelationId knows = loaded.FindRelation(tiny.person, tiny.knows,
                                         tiny.person, Direction::kOut);
  VertexId p0 = loaded.FindByExtId(tiny.person, 0, v);
  EXPECT_EQ(loaded.Degree(knows, p0, v), 3u);
  VertexId m0 = loaded.FindByExtId(loaded.catalog().VertexLabel("MESSAGE"),
                                   0, v);
  EXPECT_EQ(loaded.GetProperty(m0, loaded.catalog().Property("len"), v),
            Value::Int(555));
}

TEST(SerializationTest, LoadedGraphAnswersQueriesIdentically) {
  testutil::SnbFixture fx(0.01, 5);
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(fx.graph, buf).ok());
  Graph loaded;
  Status s = LoadGraph(buf, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();

  // Schema ids are reconstructed in the same order, so the same context
  // resolves against both graphs.
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  LdbcContext ctx2 = LdbcContext::Resolve(loaded, fx.data.schema);
  ParamGen gen(&fx.graph, &fx.data, 9);
  Executor exec(ExecMode::kFactorizedFused);
  for (int k : {1, 2, 5, 9}) {
    LdbcParams p = gen.Next();
    auto original =
        SortedRows(exec.Run(BuildIC(k, ctx, p), GraphView(&fx.graph)).table);
    auto reloaded =
        SortedRows(exec.Run(BuildIC(k, ctx2, p), GraphView(&loaded)).table);
    EXPECT_EQ(original, reloaded) << "IC" << k;
  }
}

TEST(SerializationTest, LegacyV1SnapshotLoads) {
  // Saving in the legacy inline-string format ("GESSNAP1") must stay
  // loadable and equivalent — old snapshot files keep working.
  TinyGraph tiny;
  std::stringstream v1, v2;
  ASSERT_TRUE(SaveGraph(*tiny.graph, v1, SnapshotFormat::kV1).ok());
  ASSERT_TRUE(SaveGraph(*tiny.graph, v2, SnapshotFormat::kV2).ok());
  EXPECT_EQ(v1.str().substr(0, 8), "GESSNAP1");
  EXPECT_EQ(v2.str().substr(0, 8), "GESSNAP2");

  Graph from_v1, from_v2;
  ASSERT_TRUE(LoadGraph(v1, &from_v1).ok());
  ASSERT_TRUE(LoadGraph(v2, &from_v2).ok());
  EXPECT_EQ(from_v1.NumVerticesTotal(), from_v2.NumVerticesTotal());
  EXPECT_EQ(from_v1.NumEdgesTotal(), from_v2.NumEdgesTotal());
}

TEST(SerializationTest, V2RoundTripsStringProperties) {
  // String values survive the dictionary-coded encoding, including values
  // written through the MVCC overlay after finalize (inline subtag).
  Graph g;
  Catalog& c = g.catalog();
  LabelId node = c.AddVertexLabel("NODE");
  PropertyId id = c.AddProperty(node, "id", ValueType::kInt64);
  PropertyId name = c.AddProperty(node, "name", ValueType::kString);
  std::vector<VertexId> vs;
  for (int i = 0; i < 8; ++i) {
    VertexId v = g.AddVertexBulk(node, i);
    g.SetPropertyBulk(v, id, Value::Int(i));
    g.SetPropertyBulkString(v, name, i % 2 == 0 ? "even" : "odd");
    vs.push_back(v);
  }
  g.FinalizeBulk();
  {
    auto txn = g.BeginWrite({vs[0]});
    txn->SetProperty(vs[0], name, Value::String("overlay-only"));
    txn->Commit();
  }

  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(g, buf).ok());
  Graph loaded;
  Status s = LoadGraph(buf, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  Version v = loaded.CurrentVersion();
  EXPECT_EQ(loaded.GetProperty(loaded.FindByExtId(node, 0, v), name, v),
            Value::String("overlay-only"));
  EXPECT_EQ(loaded.GetProperty(loaded.FindByExtId(node, 1, v), name, v),
            Value::String("odd"));
  EXPECT_EQ(loaded.GetProperty(loaded.FindByExtId(node, 2, v), name, v),
            Value::String("even"));
}

TEST(SerializationTest, RejectsGarbage) {
  std::stringstream buf("definitely not a snapshot");
  Graph g;
  EXPECT_FALSE(LoadGraph(buf, &g).ok());
}

TEST(SerializationTest, RejectsTruncatedSnapshot) {
  TinyGraph tiny;
  std::stringstream buf;
  ASSERT_TRUE(SaveGraph(*tiny.graph, buf).ok());
  std::string bytes = buf.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  Graph g;
  EXPECT_FALSE(LoadGraph(cut, &g).ok());
}

TEST(SerializationTest, RejectsUnfinalizedGraph) {
  Graph g;
  g.catalog().AddVertexLabel("X");
  std::stringstream buf;
  EXPECT_FALSE(SaveGraph(g, buf).ok());
}

}  // namespace
}  // namespace ges
