// f-Block tests: materialized and lazy (pointer-based join) flavors.
#include "executor/fblock.h"

#include <gtest/gtest.h>

namespace ges {
namespace {

TEST(FBlockTest, MaterializedColumns) {
  FBlock b;
  ValueVector ids(ValueType::kVertex);
  for (VertexId v = 10; v < 15; ++v) ids.AppendVertex(v);
  b.AddColumn("v", std::move(ids));
  ValueVector props(ValueType::kInt64);
  for (int i = 0; i < 5; ++i) props.AppendInt(i * 100);
  b.AppendAlignedColumn("p", std::move(props));

  EXPECT_EQ(b.NumRows(), 5u);
  EXPECT_FALSE(b.lazy());
  EXPECT_EQ(b.schema().IndexOf("v"), 0);
  EXPECT_EQ(b.schema().IndexOf("p"), 1);
  EXPECT_EQ(b.VertexAt(3), 13u);
  EXPECT_EQ(b.GetValue(2, 1), Value::Int(200));
}

class LazyFBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two segments over two backing arrays, with stamps on the first.
    block_.InitLazy("n");
    block_.AppendSegment(AdjSpan{arr1_, stamps1_, 3});
    block_.AppendSegment(AdjSpan{arr2_, nullptr, 2});
  }

  VertexId arr1_[3] = {5, 6, 7};
  int64_t stamps1_[3] = {50, 60, 70};
  VertexId arr2_[2] = {8, 9};
  FBlock block_;
};

TEST_F(LazyFBlockTest, LogicalRowsSpanSegments) {
  EXPECT_TRUE(block_.lazy());
  EXPECT_EQ(block_.NumRows(), 5u);
  EXPECT_EQ(block_.NumSegments(), 2u);
  EXPECT_EQ(block_.VertexAt(0), 5u);
  EXPECT_EQ(block_.VertexAt(2), 7u);
  EXPECT_EQ(block_.VertexAt(3), 8u);
  EXPECT_EQ(block_.VertexAt(4), 9u);
  // Random access order (exercises the segment cursor cache).
  EXPECT_EQ(block_.VertexAt(4), 9u);
  EXPECT_EQ(block_.VertexAt(0), 5u);
  EXPECT_EQ(block_.VertexAt(3), 8u);
}

TEST_F(LazyFBlockTest, StampsResolvePerSegment) {
  EXPECT_EQ(block_.StampAt(1), 60);
  EXPECT_EQ(block_.StampAt(3), 0);  // segment without stamps
}

TEST_F(LazyFBlockTest, GetValueOnLazyLeadingColumn) {
  EXPECT_EQ(block_.GetValue(1, 0), Value::Vertex(6));
}

TEST_F(LazyFBlockTest, AlignedColumnsCoexistWithLazyIds) {
  ValueVector extra(ValueType::kInt64);
  for (int i = 0; i < 5; ++i) extra.AppendInt(i);
  block_.AppendAlignedColumn("x", std::move(extra));
  EXPECT_EQ(block_.GetValue(4, 1), Value::Int(4));
  EXPECT_EQ(block_.GetValue(4, 0), Value::Vertex(9));
}

TEST_F(LazyFBlockTest, MaterializeCopiesIdsAndKeepsAlignment) {
  ValueVector extra(ValueType::kInt64);
  for (int i = 0; i < 5; ++i) extra.AppendInt(i * 2);
  block_.AppendAlignedColumn("x", std::move(extra));

  block_.Materialize();
  EXPECT_FALSE(block_.lazy());
  EXPECT_EQ(block_.NumRows(), 5u);
  EXPECT_EQ(block_.VertexAt(3), 8u);
  EXPECT_EQ(block_.GetValue(3, 1), Value::Int(6));
  // Idempotent.
  block_.Materialize();
  EXPECT_EQ(block_.NumRows(), 5u);
}

TEST_F(LazyFBlockTest, ForEachVertexIteratesInOrder) {
  std::vector<VertexId> seen;
  block_.ForEachVertex([&](uint64_t row, VertexId v) {
    EXPECT_EQ(row, seen.size());
    seen.push_back(v);
  });
  EXPECT_EQ(seen, (std::vector<VertexId>{5, 6, 7, 8, 9}));
}

TEST_F(LazyFBlockTest, MemoryIsSegmentsNotData) {
  // The lazy block's footprint is bounded by segment metadata, far below
  // the materialized id column for large adjacency lists.
  size_t lazy_bytes = block_.MemoryBytes();
  block_.Materialize();
  EXPECT_GE(block_.MemoryBytes(), 5 * sizeof(int64_t));
  EXPECT_LT(lazy_bytes, 1000u);
}

TEST(FBlockEdge, EmptyLazyBlock) {
  FBlock b;
  b.InitLazy("n");
  EXPECT_EQ(b.NumRows(), 0u);
  b.Materialize();
  EXPECT_EQ(b.NumRows(), 0u);
}

}  // namespace
}  // namespace ges
