// Resource governor (DESIGN.md §15): per-query memory budgets charged at
// the engine's allocation choke points, watermark shedding at admission,
// the runaway-query watchdog, the admin kKillQuery frame, and a
// multi-client soak proving the process plateaus below its watermark while
// short reads keep flowing and pinned readers stay byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_budget.h"
#include "common/timer.h"
#include "runtime/query_context.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using service::Client;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

// --- accounting primitives ----------------------------------------------

TEST(MemoryBudgetTest, ChargesTrackPeakAndGlobalGauge) {
  GlobalMemoryGauge gauge;
  {
    MemoryBudget b(/*limit_bytes=*/1 << 20, &gauge);
    b.Charge(1000);
    b.Charge(500);
    EXPECT_EQ(b.used(), 1500u);
    EXPECT_EQ(gauge.used(), 1500u);
    b.Release(500);
    EXPECT_EQ(b.used(), 1000u);
    EXPECT_EQ(b.peak(), 1500u);
    EXPECT_EQ(gauge.peak(), 1500u);
    EXPECT_FALSE(b.exceeded());
  }
  // Destruction returns every outstanding byte: the gauge can never leak
  // across an exception unwind.
  EXPECT_EQ(gauge.used(), 0u);
  EXPECT_EQ(gauge.peak(), 1500u);
}

TEST(MemoryBudgetTest, ExceededIsStickyAndChargeNeverThrows) {
  MemoryBudget b(/*limit_bytes=*/1000);
  b.Charge(2000);  // over the limit: flag only, no throw
  EXPECT_TRUE(b.exceeded());
  b.Release(2000);
  EXPECT_TRUE(b.exceeded()) << "a release must not un-trip the flag";
}

TEST(MemoryBudgetTest, ZeroLimitIsUnlimitedButStillTracks) {
  MemoryBudget b(/*limit_bytes=*/0);
  b.Charge(123456);
  EXPECT_FALSE(b.exceeded());
  EXPECT_EQ(b.peak(), 123456u);
}

TEST(MemoryBudgetTest, TrackerChargesAndReleasesDeltas) {
  MemoryBudget b(/*limit_bytes=*/0);
  BudgetTracker t(&b);
  t.Update(100);
  t.Update(300);
  EXPECT_EQ(b.used(), 300u);
  EXPECT_EQ(t.charged(), 300u);
  t.Update(50);  // shrink: releases the difference
  EXPECT_EQ(b.used(), 50u);
  t.Update(0);
  EXPECT_EQ(b.used(), 0u);
}

// --- QueryContext integration -------------------------------------------

TEST(QueryContextBudgetTest, ExceededBudgetTripsCheckpoint) {
  QueryContext ctx;
  ctx.AttachBudget(std::make_shared<MemoryBudget>(1000));
  ChargeMemory(&ctx, 2000);
  EXPECT_EQ(ctx.Check(), InterruptReason::kMemoryExceeded);
  bool threw = false;
  try {
    ThrowIfInterrupted(&ctx);
  } catch (const QueryInterrupted& e) {
    threw = true;
    EXPECT_EQ(e.reason, InterruptReason::kMemoryExceeded);
  }
  EXPECT_TRUE(threw);
}

TEST(QueryContextBudgetTest, CancelOutranksMemoryOutranksDeadline) {
  QueryContext ctx;
  ctx.AttachBudget(std::make_shared<MemoryBudget>(1000));
  ctx.SetDeadline(-0.001);  // already expired
  ChargeMemory(&ctx, 2000);
  EXPECT_EQ(ctx.Check(), InterruptReason::kMemoryExceeded)
      << "memory must outrank the deadline";
  ctx.Cancel();
  EXPECT_EQ(ctx.Check(), InterruptReason::kCancelled);
}

// --- engine-level kill ---------------------------------------------------

// Larger graph so the stress expansion genuinely accumulates intermediate
// state (same fixture rationale as cancellation_test).
testutil::SnbFixture& StressFixture() {
  static testutil::SnbFixture* fx = new testutil::SnbFixture(0.05, 42);
  return *fx;
}

TEST(EngineBudgetTest, StressExpandKilledByTinyBudget) {
  testutil::SnbFixture& fx = StressFixture();
  LdbcContext lctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph);
  Plan plan = service::BuildStressExpand(lctx, /*hops=*/4);

  GlobalMemoryGauge gauge;
  {
    QueryContext qctx;
    qctx.AttachBudget(
        std::make_shared<MemoryBudget>(size_t{1} << 20, &gauge));  // 1 MiB
    ExecOptions opts;
    opts.collect_stats = false;
    opts.intra_query_threads = 2;  // cover the morsel checkpoint path too
    opts.context = &qctx;
    Executor exec(ExecMode::kFactorizedFused, opts);
    QueryResult r = exec.Run(plan, view);
    EXPECT_EQ(r.interrupted, InterruptReason::kMemoryExceeded);
    EXPECT_EQ(r.table.NumRows(), 0u);
    EXPECT_GT(qctx.budget()->peak(), size_t{1} << 20)
        << "the kill must have been triggered by a real over-limit charge";
  }
  // The unwind path plus the budget destructor must square the gauge.
  EXPECT_EQ(gauge.used(), 0u);
}

// --- service level -------------------------------------------------------

std::unique_ptr<Server> StartServer(ServiceConfig config = {}) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = std::make_unique<Server>(&fx.graph, &fx.data, config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

TEST(GovernorServiceTest, HogKilledAtQueryMemoryLimit) {
  ServiceConfig config;
  config.query_memory_limit_bytes = 8ull << 20;  // 8 MiB per query
  auto server = StartServer(config);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();

  QueryResponse resp;
  ASSERT_TRUE(c.RunHog(/*mib=*/64, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kResourceExhausted)
      << service::WireStatusName(resp.status) << ": " << resp.message;
  EXPECT_NE(resp.message.find("memory budget exceeded"), std::string::npos)
      << resp.message;
  EXPECT_GT(resp.peak_memory_bytes, config.query_memory_limit_bytes);
  EXPECT_GE(server->stats().governor_killed.load(), 1u);
  EXPECT_GE(server->stats().queries_interrupted.load(), 1u);

  // The connection survives the kill, an in-budget hog completes, and an
  // OK response reports its peak charge too.
  ASSERT_TRUE(c.RunHog(/*mib=*/2, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_GE(resp.peak_memory_bytes, 2ull << 20);
}

// Polls the reaper-mirrored global gauge until it reaches `floor` bytes.
bool WaitForGlobalBytes(Server* server, size_t floor, double timeout_ms) {
  Timer t;
  while (t.ElapsedMillis() < timeout_ms) {
    if (server->stats().governor_global_bytes.load() >= floor) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(GovernorServiceTest, SoftWatermarkShedsLongQueriesNotShorts) {
  ServiceConfig config;
  config.query_workers = 2;
  config.memory_watermark_bytes = 32ull << 20;  // soft 32 MiB, hard 40 MiB
  config.shed_retry_after_ms = 77;
  auto server = StartServer(config);

  Client hog;
  ASSERT_TRUE(hog.Connect("127.0.0.1", server->port()));
  QueryRequest hreq;
  hreq.query_id = hog.AllocQueryId();
  hreq.kind = QueryKind::kHog;
  hreq.seed = 36;     // MiB: between the soft and hard watermarks
  hreq.number = 255;  // hold ms: the probe window
  Timer window;
  ASSERT_TRUE(hog.Send(hreq));
  ASSERT_TRUE(WaitForGlobalBytes(server.get(), 34ull << 20, 1000.0))
      << "hog charge never became visible in governor_global_bytes";

  // Long class ("HOG" carries the long prior) is refused with the hint...
  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server->port()));
  QueryResponse long_resp;
  ASSERT_TRUE(probe.RunHog(/*mib=*/1, &long_resp)) << probe.last_error();
  // ...while a short read on the same connection is still admitted.
  ParamGen gen(&testutil::SnbFixture::Shared().graph,
               &testutil::SnbFixture::Shared().data, /*seed=*/77);
  QueryResponse short_resp;
  ASSERT_TRUE(probe.RunIS(2, gen.Next(), &short_resp)) << probe.last_error();
  bool hog_still_holding = window.ElapsedMillis() < 230.0;

  QueryResponse hog_resp;
  ASSERT_TRUE(hog.ReadResponse(&hog_resp)) << hog.last_error();
  EXPECT_EQ(hog_resp.status, WireStatus::kOk) << hog_resp.message;

  if (long_resp.status != WireStatus::kOverloaded && !hog_still_holding) {
    GTEST_SKIP() << "machine too slow: the hog released before the probes";
  }
  EXPECT_EQ(long_resp.status, WireStatus::kOverloaded)
      << service::WireStatusName(long_resp.status) << ": "
      << long_resp.message;
  EXPECT_EQ(long_resp.retry_after_ms, 77u);
  EXPECT_NE(long_resp.message.find("watermark"), std::string::npos);
  EXPECT_EQ(short_resp.status, WireStatus::kOk)
      << "soft watermark must not shed short reads: " << short_resp.message;
  EXPECT_GE(server->stats().governor_shed.load(), 1u);
  EXPECT_GE(server->stats().queries_rejected.load(), 1u);
}

TEST(GovernorServiceTest, HardWatermarkShedsEverything) {
  ServiceConfig config;
  config.query_workers = 2;
  config.memory_watermark_bytes = 32ull << 20;  // hard = 40 MiB
  auto server = StartServer(config);

  Client hog;
  ASSERT_TRUE(hog.Connect("127.0.0.1", server->port()));
  QueryRequest hreq;
  hreq.query_id = hog.AllocQueryId();
  hreq.kind = QueryKind::kHog;
  hreq.seed = 48;     // MiB: beyond the hard watermark
  hreq.number = 255;  // hold ms
  Timer window;
  ASSERT_TRUE(hog.Send(hreq));
  ASSERT_TRUE(WaitForGlobalBytes(server.get(), 41ull << 20, 1000.0));

  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server->port()));
  ParamGen gen(&testutil::SnbFixture::Shared().graph,
               &testutil::SnbFixture::Shared().data, /*seed=*/78);
  QueryResponse short_resp;
  ASSERT_TRUE(probe.RunIS(2, gen.Next(), &short_resp)) << probe.last_error();
  bool hog_still_holding = window.ElapsedMillis() < 230.0;

  QueryResponse hog_resp;
  ASSERT_TRUE(hog.ReadResponse(&hog_resp)) << hog.last_error();
  EXPECT_EQ(hog_resp.status, WireStatus::kOk) << hog_resp.message;

  if (short_resp.status != WireStatus::kOverloaded && !hog_still_holding) {
    GTEST_SKIP() << "machine too slow: the hog released before the probe";
  }
  EXPECT_EQ(short_resp.status, WireStatus::kOverloaded)
      << "hard watermark must shed even short reads: " << short_resp.message;
  EXPECT_GT(short_resp.retry_after_ms, 0u);
}

TEST(GovernorServiceTest, WatchdogShootsQueryStuckBetweenCheckpoints) {
  ServiceConfig config;
  config.watchdog_grace_ms = 50;
  auto server = StartServer(config);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port()));

  // A sleep that polls its context only every 200 ms blows straight
  // through its 50 ms deadline — the stand-in for an operator stuck
  // between checkpoints. The watchdog's forced Cancel outranks the
  // deadline at the late checkpoint, so CANCELLED (not DEADLINE_EXCEEDED)
  // proves the watchdog, not the query, ended it.
  QueryRequest req;
  req.query_id = c.AllocQueryId();
  req.kind = QueryKind::kSleep;
  req.seed = 1000;      // nominal 1 s
  req.number = 200;     // checkpoint interval ms
  req.deadline_ms = 50;
  QueryResponse resp;
  Timer t;
  ASSERT_TRUE(c.Run(req, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kCancelled)
      << service::WireStatusName(resp.status) << ": " << resp.message;
  EXPECT_LT(t.ElapsedMillis(), 800.0);
  EXPECT_GE(server->stats().governor_killed.load(), 1u);
}

TEST(GovernorServiceTest, KillQueryFrameShootsAcrossSessions) {
  auto server = StartServer();
  Client victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", server->port()));
  QueryRequest req;
  req.query_id = victim.AllocQueryId();
  req.kind = QueryKind::kSleep;
  req.seed = 3000;  // ms: would dominate the test without the kill
  ASSERT_TRUE(victim.Send(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The kill arrives on a different session and still finds the query.
  Client admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", server->port()));
  uint32_t killed = 0;
  ASSERT_TRUE(admin.KillQuery(req.query_id, &killed)) << admin.last_error();
  EXPECT_EQ(killed, 1u);
  uint32_t none = 99;
  ASSERT_TRUE(admin.KillQuery(0xdeadbeefULL, &none)) << admin.last_error();
  EXPECT_EQ(none, 0u) << "an unknown id must kill nothing";

  QueryResponse resp;
  Timer t;
  ASSERT_TRUE(victim.ReadResponse(&resp)) << victim.last_error();
  EXPECT_EQ(resp.query_id, req.query_id);
  EXPECT_EQ(resp.status, WireStatus::kCancelled) << resp.message;
  EXPECT_LT(t.ElapsedMillis(), 2000.0) << "kill must cut the sleep short";
  EXPECT_GE(server->stats().governor_killed.load(), 1u);
}

// --- the soak ------------------------------------------------------------

// Memory-hog mix: an in-budget hog and an over-budget hog loop alongside a
// short-read client, an update writer and a pinned reader. The process
// must plateau below the watermark, every over-budget hog must die with
// RESOURCE_EXHAUSTED (never a crash), short-read p99 must stay bounded,
// and the pinned reader must see byte-identical results throughout.
TEST(GovernorSoakTest, HogMixPlateausBelowWatermarkWhileShortsFlow) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  ServiceConfig config;
  config.query_workers = 4;
  config.query_memory_limit_bytes = 24ull << 20;  // 24 MiB per query
  config.memory_watermark_bytes = 48ull << 20;    // soft 48 MiB
  Server server(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hog_ok{0}, hog_killed{0}, hog_other{0};
  std::atomic<uint64_t> client_failures{0};

  // In-budget hog: 16 MiB, held 30 ms, forever.
  std::thread tame_hog([&] {
    Client c;
    if (!c.Connect("127.0.0.1", server.port())) {
      client_failures.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      QueryResponse resp;
      if (!c.RunHog(16, &resp, /*deadline_ms=*/0, /*hold_ms=*/30)) {
        client_failures.fetch_add(1);
        return;
      }
      (resp.status == WireStatus::kOk ? hog_ok : hog_other).fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Over-budget hog: wants 32 MiB against a 24 MiB limit — every attempt
  // must die cleanly at a checkpoint with RESOURCE_EXHAUSTED.
  std::thread greedy_hog([&] {
    Client c;
    if (!c.Connect("127.0.0.1", server.port())) {
      client_failures.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      QueryResponse resp;
      if (!c.RunHog(32, &resp)) {
        client_failures.fetch_add(1);
        return;
      }
      (resp.status == WireStatus::kResourceExhausted ? hog_killed : hog_other)
          .fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Writer: commits keep advancing the global version under the soak so
  // the pinned reader below proves snapshot isolation, not quiescence.
  std::thread writer([&] {
    Client c;
    if (!c.Connect("127.0.0.1", server.port())) {
      client_failures.fetch_add(1);
      return;
    }
    uint64_t seed = 1;
    while (!stop.load()) {
      QueryResponse resp;
      if (!c.RunIU(1, seed++, &resp)) {
        client_failures.fetch_add(1);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Pinned reader: session pinned at connect; a fixed IS read must come
  // back byte-identical for the whole soak regardless of hogs and writes.
  Client pinned;
  ASSERT_TRUE(pinned.Connect("127.0.0.1", server.port()));
  ParamGen pinned_gen(&fx.graph, &fx.data, /*seed=*/7);
  LdbcParams pinned_params = pinned_gen.Next();
  QueryResponse golden_resp;
  ASSERT_TRUE(pinned.RunIS(2, pinned_params, &golden_resp));
  ASSERT_EQ(golden_resp.status, WireStatus::kOk) << golden_resp.message;
  std::vector<std::string> golden = testutil::OrderedRows(golden_resp.table);

  // Short-read client: latency of every read feeds the p99 gate.
  Client shorts;
  ASSERT_TRUE(shorts.Connect("127.0.0.1", server.port()));
  ParamGen gen(&fx.graph, &fx.data, /*seed=*/99);
  std::vector<double> latencies_ms;
  Timer soak;
  int iter = 0;
  while (soak.ElapsedMillis() < 1200.0) {
    QueryResponse resp;
    Timer t;
    ASSERT_TRUE(shorts.RunIS(2, gen.Next(), &resp)) << shorts.last_error();
    latencies_ms.push_back(t.ElapsedMillis());
    ASSERT_EQ(resp.status, WireStatus::kOk)
        << "short reads must never be governed in this mix: " << resp.message;
    if (++iter % 10 == 0) {
      QueryResponse again;
      ASSERT_TRUE(pinned.RunIS(2, pinned_params, &again));
      ASSERT_EQ(again.status, WireStatus::kOk) << again.message;
      EXPECT_EQ(testutil::OrderedRows(again.table), golden)
          << "pinned reader diverged mid-soak";
    }
  }
  stop.store(true);
  tame_hog.join();
  greedy_hog.join();
  writer.join();

  EXPECT_EQ(client_failures.load(), 0u) << "a governed client lost its "
                                           "connection — kills must be "
                                           "responses, not resets";
  EXPECT_GE(hog_ok.load(), 1u);
  EXPECT_GE(hog_killed.load(), 1u);
  EXPECT_EQ(hog_other.load(), 0u)
      << "hogs must end OK (in budget) or RESOURCE_EXHAUSTED (over)";

  // The plateau: concurrent charge never crossed the watermark (the tame
  // hog plus the greedy hog's pre-kill peak sit well under it).
  uint64_t peak = server.stats().governor_peak_global_bytes.load();
  EXPECT_GT(peak, 16ull << 20) << "gauge never saw the hogs";
  EXPECT_LE(peak, config.memory_watermark_bytes)
      << "process memory must plateau below the watermark";
  EXPECT_GE(server.stats().governor_killed.load(), hog_killed.load());

  std::sort(latencies_ms.begin(), latencies_ms.end());
  ASSERT_FALSE(latencies_ms.empty());
  double p99 = latencies_ms[static_cast<size_t>(
      static_cast<double>(latencies_ms.size() - 1) * 0.99)];
  EXPECT_LT(p99, 1000.0) << "short-read p99 exploded under the hog mix";

  server.Drain(2.0);
}

}  // namespace
}  // namespace ges
