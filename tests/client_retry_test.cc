// service::Client transient-failure handling: bounded reconnect with
// exponential backoff + jitter, read retry after a mid-stream EOF, and the
// non-idempotent-update exception (an update that was delivered but never
// acknowledged must NOT be retried). Uses a scripted fake server speaking
// just enough of the wire protocol to fail at the right moment.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "replication/routed_client.h"
#include "service/client.h"
#include "service/protocol.h"

namespace ges::service {
namespace {

using replication::Endpoint;
using replication::RoutedClient;

// Listening socket on a loopback port (ephemeral unless `port` given).
class Listener {
 public:
  explicit Listener(uint16_t port = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~Listener() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);  // wakes a thread blocked in accept()
      ::close(fd_);
      fd_ = -1;
    }
  }

  int Accept() { return ::accept(fd_, nullptr, nullptr); }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Reads the kHello frame and answers kHelloOk. Returns false on EOF/garbage.
bool Handshake(int conn) {
  std::string payload;
  if (ReadFrame(conn, &payload) != ReadResult::kOk) return false;
  WireReader in(payload);
  if (static_cast<MsgType>(in.GetU8()) != MsgType::kHello) return false;
  WireBuf ok;
  ok.PutU8(static_cast<uint8_t>(MsgType::kHelloOk));
  ok.PutU64(1);  // session id
  ok.PutU64(0);  // snapshot version
  return WriteFrame(conn, ok.data());
}

// Reads one kQuery frame; returns false on EOF or a non-query frame (kBye).
bool ReadQuery(int conn, QueryRequest* req) {
  std::string payload;
  if (ReadFrame(conn, &payload) != ReadResult::kOk) return false;
  WireReader in(payload);
  if (static_cast<MsgType>(in.GetU8()) != MsgType::kQuery) return false;
  return DecodeQueryRequest(&in, req);
}

void ReplyOk(int conn, uint64_t query_id) {
  QueryResponse resp;
  resp.query_id = query_id;
  resp.status = WireStatus::kOk;
  WriteFrame(conn, EncodeQueryResponse(resp));
}

// Replies with a non-OK status (a governor refusal) and a retry-after hint.
void ReplyStatus(int conn, uint64_t query_id, WireStatus status,
                 uint32_t retry_after_ms = 0) {
  QueryResponse resp;
  resp.query_id = query_id;
  resp.status = status;
  resp.retry_after_ms = retry_after_ms;
  WriteFrame(conn, EncodeQueryResponse(resp));
}

// Grabs an ephemeral port that nothing listens on (bind + close).
uint16_t FreePort() {
  Listener l;
  uint16_t port = l.port();
  return port;  // l closes; the port is now refused (modulo reuse races)
}

TEST(ClientRetryTest, NoRetryByDefault) {
  uint16_t port = FreePort();
  Client c;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(c.Connect("127.0.0.1", port));
  auto elapsed = std::chrono::steady_clock::now() - start;
  // Default policy: a single attempt, no backoff sleeps.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_NE(c.last_error().find("connect"), std::string::npos)
      << c.last_error();
}

TEST(ClientRetryTest, ConnectBacksOffBetweenRefusals) {
  uint16_t port = FreePort();
  Client c;
  RetryPolicy p;
  p.max_retries = 2;
  p.base_backoff_ms = 40;
  c.set_retry_policy(p);
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(c.Connect("127.0.0.1", port));
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  // Two backoffs of jittered [20,40] + [40,80] ms: at least ~60ms total.
  EXPECT_GE(ms, 55);
}

TEST(ClientRetryTest, ConnectSucceedsOnceServerComesUp) {
  // Reserve a port, then leave it refusing connections until the "server"
  // comes up late — the client's first attempts must be refused and
  // retried, not queued in a backlog.
  uint16_t port = FreePort();
  std::thread server([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Listener listener(port);
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    EXPECT_TRUE(Handshake(conn));
    std::string payload;
    ReadFrame(conn, &payload);  // drain the Bye, if any
    ::close(conn);
  });
  Client c;
  RetryPolicy p;
  p.max_retries = 5;
  p.base_backoff_ms = 20;
  c.set_retry_policy(p);
  EXPECT_TRUE(c.Connect("127.0.0.1", port));
  EXPECT_TRUE(c.connected());
  c.Close();
  server.join();
}

TEST(ClientRetryTest, ReadRetriedAfterMidStreamEof) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::thread server([&listener, &queries_seen] {
    // First connection: handshake, swallow the query, die without a reply.
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ::close(conn);  // mid-stream EOF: delivered but unanswered
    // Second connection (the retry): behave.
    conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyOk(conn, req.query_id);
    std::string payload;
    ReadFrame(conn, &payload);  // drain the Bye, if any
    ::close(conn);
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;
  p.base_backoff_ms = 5;
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  // A read (kIS) is idempotent: the client must transparently reconnect
  // and re-send it after the first connection dies.
  QueryRequest req;
  req.query_id = c.AllocQueryId();
  req.kind = QueryKind::kIS;
  req.number = 1;
  QueryResponse resp;
  EXPECT_TRUE(c.Run(req, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(queries_seen.load(), 2);
  c.Close();
  server.join();
}

TEST(ClientRetryTest, ReadRetriedAfterPartialResponseFrame) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::thread server([&listener, &queries_seen] {
    // First connection: answer the query with a length prefix promising a
    // 64-byte body, deliver 5 bytes, then die — a truncated frame, the
    // worst kind of mid-response drop.
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    char frame[9] = {64, 0, 0, 0,  // LE u32 length = 64
                     static_cast<char>(MsgType::kResult), 'x', 'x', 'x',
                     'x'};
    ::send(conn, frame, sizeof(frame), MSG_NOSIGNAL);
    ::close(conn);
    // Second connection (the retry): behave.
    conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyOk(conn, req.query_id);
    std::string payload;
    ReadFrame(conn, &payload);  // drain the Bye, if any
    ::close(conn);
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;
  p.base_backoff_ms = 5;
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  QueryRequest req;
  req.query_id = c.AllocQueryId();
  req.kind = QueryKind::kIS;
  req.number = 1;
  QueryResponse resp;
  EXPECT_TRUE(c.Run(req, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(queries_seen.load(), 2);
  c.Close();
  server.join();
}

TEST(ClientRetryTest, OverloadedReadRetriedHonoringRetryAfterHint) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::thread server([&listener, &queries_seen] {
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    // Watermark shed: refuse with a hint, then accept the retry on the
    // SAME connection (a shed is a clean response, not a broken socket).
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyStatus(conn, req.query_id, WireStatus::kOverloaded,
                /*retry_after_ms=*/80);
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyOk(conn, req.query_id);
    std::string payload;
    ReadFrame(conn, &payload);  // drain the Bye, if any
    ::close(conn);
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;
  p.base_backoff_ms = 1;  // tiny: the 80 ms hint must dominate
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  QueryRequest req;
  req.query_id = c.AllocQueryId();
  req.kind = QueryKind::kIS;
  req.number = 1;
  QueryResponse resp;
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(c.Run(req, &resp)) << c.last_error();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(queries_seen.load(), 2);
  EXPECT_GE(ms, 70) << "the server's retry-after hint is a backoff floor";
  c.Close();
  server.join();
}

TEST(ClientRetryTest, ResourceExhaustedReadRetried) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::thread server([&listener, &queries_seen] {
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    // A budget kill / admission backpressure, then recovery.
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyStatus(conn, req.query_id, WireStatus::kResourceExhausted);
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyOk(conn, req.query_id);
    std::string payload;
    ReadFrame(conn, &payload);  // drain the Bye, if any
    ::close(conn);
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;
  p.base_backoff_ms = 5;
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  QueryRequest req;
  req.query_id = c.AllocQueryId();
  req.kind = QueryKind::kIS;
  req.number = 1;
  QueryResponse resp;
  EXPECT_TRUE(c.Run(req, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(queries_seen.load(), 2);
  c.Close();
  server.join();
}

TEST(ClientRetryTest, OverloadedUpdateIsNotRetried) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::atomic<int> bogus_retries{0};
  std::thread server([&listener, &queries_seen, &bogus_retries] {
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ReplyStatus(conn, req.query_id, WireStatus::kOverloaded,
                /*retry_after_ms=*/10);
    // Anything further that parses as a query is an illegal retry;
    // the only legitimate next frame is the kBye from Close().
    if (ReadQuery(conn, &req)) bogus_retries.fetch_add(1);
    ::close(conn);
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;  // retries ON — the update must still not retry
  p.base_backoff_ms = 5;
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  // The refusal is a clean response, so Run() reports delivery success and
  // surfaces the status for the caller to decide — exactly once.
  QueryResponse resp;
  EXPECT_TRUE(c.RunIU(1, /*seed=*/42, &resp)) << c.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOverloaded);
  EXPECT_EQ(queries_seen.load(), 1);
  c.Close();
  server.join();
  EXPECT_EQ(bogus_retries.load(), 0) << "refused update was re-sent";
}

TEST(ClientRetryTest, RoutedReadFailsOverToAnotherEndpoint) {
  // A "replica" that accepts, swallows the query and dies, next to a
  // healthy "primary": the routed read must land on the survivor.
  Listener replica;
  Listener primary;
  std::atomic<int> replica_queries{0};
  std::atomic<int> primary_queries{0};
  std::atomic<bool> done{false};
  std::thread replica_thread([&] {
    while (!done.load()) {
      int conn = replica.Accept();
      if (conn < 0) break;
      QueryRequest req;
      if (Handshake(conn) && ReadQuery(conn, &req)) {
        replica_queries.fetch_add(1);
      }
      ::close(conn);  // never answers
    }
  });
  std::thread primary_thread([&] {
    int conn = primary.Accept();
    if (conn < 0) return;
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    while (ReadQuery(conn, &req)) {
      primary_queries.fetch_add(1);
      ReplyOk(conn, req.query_id);
    }
    ::close(conn);
  });

  RoutedClient::Options opts;
  opts.primary = Endpoint{"127.0.0.1", primary.port()};
  opts.replicas = {Endpoint{"127.0.0.1", replica.port()}};
  RoutedClient router(opts);

  QueryResponse resp;
  EXPECT_TRUE(router.RunSleep(/*millis=*/0, &resp)) << router.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(replica_queries.load(), 1) << "read never tried the replica";
  EXPECT_EQ(primary_queries.load(), 1) << "read did not fail over";

  router.Close();
  done.store(true);
  replica.Close();
  primary.Close();
  replica_thread.join();
  primary_thread.join();
}

TEST(ClientRetryTest, RoutedAmbiguousUpdateIsNeverRetried) {
  // The primary swallows the update and dies; the router must surface the
  // ambiguity, not re-send it to anyone — including its replicas.
  Listener primary;
  Listener replica;
  std::atomic<int> update_frames{0};
  std::atomic<bool> done{false};
  std::thread primary_thread([&] {
    int conn = primary.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    ASSERT_TRUE(ReadQuery(conn, &req));
    update_frames.fetch_add(1);
    ::close(conn);  // delivered, unacknowledged
    while (!done.load()) {
      int extra = primary.Accept();
      if (extra < 0) break;
      if (Handshake(extra) && ReadQuery(extra, &req)) {
        update_frames.fetch_add(1);
      }
      ::close(extra);
    }
  });
  std::thread replica_thread([&] {
    while (!done.load()) {
      int conn = replica.Accept();
      if (conn < 0) break;
      QueryRequest req;
      if (Handshake(conn) && ReadQuery(conn, &req)) {
        update_frames.fetch_add(1);
      }
      ::close(conn);
    }
  });

  RoutedClient::Options opts;
  opts.primary = Endpoint{"127.0.0.1", primary.port()};
  opts.replicas = {Endpoint{"127.0.0.1", replica.port()}};
  opts.retry.max_retries = 3;  // retries ON — the update must still not
  opts.retry.base_backoff_ms = 5;
  RoutedClient router(opts);

  QueryResponse resp;
  EXPECT_FALSE(router.RunIU(1, /*seed=*/42, &resp));
  EXPECT_NE(router.last_error().find("ambiguous"), std::string::npos)
      << router.last_error();
  EXPECT_EQ(update_frames.load(), 1) << "ambiguous update was re-sent";

  router.Close();
  done.store(true);
  primary.Close();
  replica.Close();
  primary_thread.join();
  replica_thread.join();
}

TEST(ClientRetryTest, AmbiguousUpdateIsNeverRetried) {
  Listener listener;
  std::atomic<int> queries_seen{0};
  std::atomic<bool> done{false};
  std::thread server([&listener, &queries_seen, &done] {
    // Swallow the update and die. Then keep accepting: if the client
    // (incorrectly) retried, we would see a second query frame.
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_TRUE(Handshake(conn));
    QueryRequest req;
    ASSERT_TRUE(ReadQuery(conn, &req));
    queries_seen.fetch_add(1);
    ::close(conn);
    while (!done.load()) {
      int extra = listener.Accept();
      if (extra < 0) break;  // listener closed: test is over
      if (Handshake(extra) && ReadQuery(extra, &req)) {
        queries_seen.fetch_add(1);
      }
      ::close(extra);
    }
  });

  Client c;
  RetryPolicy p;
  p.max_retries = 3;  // retries are ON — the update must still not retry
  p.base_backoff_ms = 5;
  c.set_retry_policy(p);
  ASSERT_TRUE(c.Connect("127.0.0.1", listener.port()));

  QueryResponse resp;
  EXPECT_FALSE(c.RunIU(1, /*seed=*/42, &resp));
  EXPECT_NE(c.last_error().find("ambiguous"), std::string::npos)
      << c.last_error();
  EXPECT_EQ(queries_seen.load(), 1) << "ambiguous update was re-sent";

  done.store(true);
  listener.Close();  // unblocks the accept loop
  server.join();
}

}  // namespace
}  // namespace ges::service
