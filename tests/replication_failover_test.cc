// Kill-the-primary failover drill. A forked child runs a durable primary
// with semi-synchronous replication (min_replica_acks=1); the parent
// attaches two in-memory replicas, hammers IU commits recording every
// acknowledged commit version, then SIGKILLs the primary mid-load.
//
// The claim under test: because an acknowledgement requires at least one
// replica to have APPLIED the commit, promoting the most-caught-up
// replica loses no acknowledged transaction — and a client holding a
// read-your-writes token minted by an acked commit never observes a
// state older than its own write, even across the failover.
//
// Environment knobs (shared with scripts/crash_loop.sh):
//   GES_CRASH_ITERS  kill/promote iterations (default 2)
//   GES_CRASH_DIR    persistent primary data dir (default: fresh temp dir)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "datagen/snb_generator.h"
#include "replication/replica.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "storage/graph.h"

namespace ges {
namespace {

using replication::Replica;
using service::Client;
using service::QueryKind;
using service::QueryRequest;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

// The forked primary. Plain return codes, no gtest in the child; it never
// returns normally — the parent SIGKILLs it. Recovers the persistent dir
// if a previous incarnation left one (crash_loop.sh reuses the dir), else
// seeds a small SNB graph. Publishes its ephemeral port via rename() so
// the parent never reads a half-written file.
int RunPrimaryChild(const std::string& dir) {
  DurabilityOptions dur;
  dur.wal.fsync_policy = FsyncPolicy::kAlways;

  std::unique_ptr<Graph> graph;
  SnbData data;
  if (Graph::SnapshotExists(dir)) {
    if (!Graph::Open(dir, dur, &graph).ok()) return 3;
    data = RebuildSnbData(graph.get());
  } else {
    graph = std::make_unique<Graph>();
    SnbConfig snb;
    snb.scale_factor = 0.005;
    data = GenerateSnb(snb, graph.get());
    if (!graph->EnableDurability(dir, dur).ok()) return 3;
  }

  ServiceConfig cfg;
  cfg.min_replica_acks = 1;
  cfg.replica_ack_timeout_seconds = 5.0;
  Server server(graph.get(), &data, cfg);
  std::string error;
  if (!server.Start(&error)) return 4;

  {
    std::ofstream out(dir + "/port.tmp");
    out << server.port() << "\n";
  }
  if (std::rename((dir + "/port.tmp").c_str(),
                  (dir + "/port.txt").c_str()) != 0) {
    return 5;
  }
  for (;;) ::pause();  // serve until murdered
}

uint16_t WaitForPort(const std::string& dir, pid_t child, double timeout_s) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(dir + "/port.txt");
    int p = 0;
    if (in >> p && p > 0) return static_cast<uint16_t>(p);
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) return 0;  // died early
    ::usleep(20000);
  }
  return 0;
}

Replica::Options InMemoryReplica(uint16_t port, const std::string& name) {
  Replica::Options opts;
  opts.primary_port = port;
  opts.name = name;
  return opts;  // no data_dir: bootstraps from the shipped snapshot
}

TEST(ReplicationFailoverTest, KillPrimaryPromoteReplicaZeroAckedLoss) {
  const char* dir_env = std::getenv("GES_CRASH_DIR");
  std::string dir;
  bool own_dir = false;
  if (dir_env != nullptr && dir_env[0] != '\0') {
    dir = dir_env;
    std::filesystem::create_directories(dir);
  } else {
    char buf[] = "/tmp/ges_failover_test_XXXXXX";
    dir = ::mkdtemp(buf);
    own_dir = true;
  }
  const char* iters_env = std::getenv("GES_CRASH_ITERS");
  int iters = iters_env != nullptr ? std::atoi(iters_env) : 2;

  std::random_device rd;
  std::mt19937_64 rng(rd());

  for (int iter = 0; iter < iters; ++iter) {
    std::filesystem::remove(dir + "/port.txt");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: single-threaded at this point; every thread it needs it
      // creates itself.
      ::_exit(RunPrimaryChild(dir));
    }
    uint16_t port = WaitForPort(dir, pid, 30.0);
    if (port == 0) ::kill(pid, SIGKILL);
    ASSERT_NE(port, 0) << "primary child never published a port";

    Replica r1(InMemoryReplica(port, "failover-a"));
    Replica r2(InMemoryReplica(port, "failover-b"));
    ASSERT_TRUE(r1.Start().ok()) << r1.last_error();
    ASSERT_TRUE(r2.Start().ok()) << r2.last_error();

    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port)) << client.last_error();

    // Seed distinct across incarnations so IU inserts never collide with
    // rows a previous run already committed.
    uint64_t seed_base = (static_cast<uint64_t>(::getpid()) << 32) ^
                         (static_cast<uint64_t>(pid) << 16) ^
                         static_cast<uint64_t>(iter);

    // A few commits guaranteed to land before the axe falls, so every
    // iteration exercises a non-empty acked set.
    std::vector<uint64_t> acked;
    QueryResponse resp;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(client.RunIU(1 + (i % 3), seed_base + i, &resp))
          << client.last_error();
      if (resp.status == WireStatus::kOk) acked.push_back(resp.snapshot_version);
    }
    ASSERT_FALSE(acked.empty());

    // Kill at a random point while the commit loop below is running.
    std::thread killer([&] {
      ::usleep(static_cast<useconds_t>(50000 + rng() % 350000));
      ::kill(pid, SIGKILL);
    });
    for (int i = 3; i < 100000; ++i) {
      if (!client.RunIU(1 + (i % 3), seed_base + i, &resp)) break;
      // Only OK responses count as acknowledged. A semisync timeout or a
      // dropped connection is explicitly "may or may not survive".
      if (resp.status == WireStatus::kOk) acked.push_back(resp.snapshot_version);
    }
    killer.join();
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "primary child failed before the kill: status=" << status;
    client.Close();
    r1.Stop();
    r2.Stop();

    uint64_t max_acked = acked.back();  // commit versions are monotonic
    uint64_t best = std::max(r1.applied_version(), r2.applied_version());
    ASSERT_GE(best, max_acked)
        << "acknowledged transaction lost: best replica at v" << best
        << ", client was acked through v" << max_acked;

    // On the last iteration, actually fail over: promote the most
    // caught-up replica and verify the read-your-writes token survives.
    if (iter == iters - 1) {
      Replica& winner = r1.applied_version() >= r2.applied_version() ? r1 : r2;
      ASSERT_TRUE(winner.Promote().ok());
      SnbData rdata = RebuildSnbData(winner.graph());
      ServiceConfig rcfg;
      rcfg.replica = true;
      Server successor(winner.graph(), &rdata, rcfg);
      std::string error;
      ASSERT_TRUE(successor.Start(&error)) << error;
      successor.PromoteToPrimary();

      Client c2;
      ASSERT_TRUE(c2.Connect("127.0.0.1", successor.port()));
      // RYW across failover: a read floored at the client's last acked
      // commit must see at least that version on the new primary.
      QueryRequest req;
      req.query_id = c2.AllocQueryId();
      req.kind = QueryKind::kSleep;
      req.seed = 0;
      req.min_version = max_acked;
      ASSERT_TRUE(c2.Run(req, &resp)) << c2.last_error();
      EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
      EXPECT_GE(resp.snapshot_version, max_acked);
      // ...and the promoted node accepts writes.
      ASSERT_TRUE(c2.RunIU(1, seed_base + 999999, &resp)) << c2.last_error();
      EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
      EXPECT_GT(resp.snapshot_version, best);
      c2.Close();
      successor.Drain(2.0);
    }
  }

  if (own_dir) std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ges
