// Exhaustive ablation-matrix equivalence: every IC query must produce the
// same result under every combination of the executor's optimization
// options — pointer join, vectorized filters, each fusion rule, and
// intra-query parallelism. Optimizations must be exact.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "queries/ldbc.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SnbFixture;

struct OptionCombo {
  const char* name;
  ExecOptions options;
};

std::vector<OptionCombo> Combos() {
  std::vector<OptionCombo> combos;
  combos.push_back({"all_on", ExecOptions{}});
  {
    ExecOptions o;
    o.pointer_join = false;
    combos.push_back({"no_pointer_join", o});
  }
  {
    ExecOptions o;
    o.vectorized_filter = false;
    combos.push_back({"no_vectorized_filter", o});
  }
  {
    ExecOptions o;
    o.vector_kernels = false;
    combos.push_back({"no_vector_kernels", o});
  }
  {
    ExecOptions o;
    o.fuse_filter_into_expand = false;
    combos.push_back({"no_filter_fusion", o});
  }
  {
    ExecOptions o;
    o.fuse_topk = false;
    combos.push_back({"no_topk", o});
  }
  {
    ExecOptions o;
    o.fuse_agg_project_top = false;
    combos.push_back({"no_agg_fusion", o});
  }
  {
    ExecOptions o;
    o.fuse_filter_into_expand = false;
    o.fuse_topk = false;
    o.fuse_agg_project_top = false;
    combos.push_back({"no_fusion_at_all", o});
  }
  {
    ExecOptions o;
    o.intra_query_threads = 4;
    combos.push_back({"intra_parallel", o});
  }
  {
    ExecOptions o;
    o.pointer_join = false;
    o.vectorized_filter = false;
    o.vector_kernels = false;
    o.fuse_filter_into_expand = false;
    o.fuse_topk = false;
    o.fuse_agg_project_top = false;
    combos.push_back({"all_off", o});
  }
  return combos;
}

class AblationMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationMatrixTest, AllOptionCombosAgree) {
  int k = GetParam();
  SnbFixture& fx = SnbFixture::Shared();
  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  ParamGen gen(&fx.graph, &fx.data, 7700 + k);
  GraphView view(&fx.graph);
  for (int i = 0; i < 3; ++i) {
    LdbcParams p = gen.Next();
    Plan plan = BuildIC(k, ctx, p);
    // Baseline: flat engine (no optimizations by construction).
    auto baseline =
        OrderedRows(Executor(ExecMode::kFlat).Run(plan, view).table);
    for (const OptionCombo& combo : Combos()) {
      for (ExecMode mode :
           {ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
        Executor exec(mode, combo.options);
        auto rows = OrderedRows(exec.Run(plan, view).table);
        EXPECT_EQ(rows, baseline)
            << "IC" << k << " combo=" << combo.name
            << " mode=" << ExecModeName(mode) << " params#" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIC, AblationMatrixTest, ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "IC" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ges
