// Prepared statements + the shared LRU plan cache (DESIGN.md §14):
// PlanCache unit behavior (hit/miss accounting, LRU eviction, stats-epoch
// invalidation), the kPrepare/kExecute wire path end to end, cross-session
// template reuse, handle lifetime errors, and a differential check that a
// cached, parameter-bound plan answers byte-identically to a cold-compiled
// literal plan under every execution mode.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "executor/executor.h"
#include "executor/explain.h"
#include "executor/graph_view.h"
#include "executor/optimizer.h"
#include "frontend/parser.h"
#include "frontend/plan_cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using service::Client;
using service::PrepareResult;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

// --- PlanCache unit tests ----------------------------------------------

std::shared_ptr<const PreparedPlan> MakeTemplate(const std::string& key,
                                                 uint64_t epoch) {
  auto plan = std::make_shared<PreparedPlan>();
  plan->normalized = key;
  plan->stats_epoch = epoch;
  return plan;
}

TEST(PlanCacheTest, HitAndMissAccounting) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Lookup("q1", 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(MakeTemplate("q1", 0));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup("q1", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->normalized, "q1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Insert(MakeTemplate("a", 0));
  cache.Insert(MakeTemplate("b", 0));
  // Touch `a` so `b` becomes the LRU victim.
  ASSERT_NE(cache.Lookup("a", 0), nullptr);
  cache.Insert(MakeTemplate("c", 0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup("b", 0), nullptr);
  EXPECT_NE(cache.Lookup("a", 0), nullptr);
  EXPECT_NE(cache.Lookup("c", 0), nullptr);
}

TEST(PlanCacheTest, StaleEpochMissesUntilReplaced) {
  PlanCache cache(4);
  cache.Insert(MakeTemplate("q", 7));
  EXPECT_NE(cache.Lookup("q", 7), nullptr);
  // A newer stats epoch invalidates the entry without removing it.
  EXPECT_EQ(cache.Lookup("q", 8), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  // Re-planning replaces in place: no eviction is charged.
  cache.Insert(MakeTemplate("q", 8));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_NE(cache.Lookup("q", 8), nullptr);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Insert(MakeTemplate("q", 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("q", 0), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
}

// --- prepared statements over the wire ---------------------------------

constexpr const char* kKnowsTemplate =
    "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = $0 "
    "RETURN f.id ORDER BY f.id ASC";

std::unique_ptr<Server> StartServer(ServiceConfig config = {}) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = std::make_unique<Server>(&fx.graph, &fx.data, config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

std::string Bytes(const FlatBlock& table) {
  service::WireBuf b;
  PutFlatBlock(&b, table);
  return b.Take();
}

TEST(PreparedStatementTest, PrepareExecuteRoundTrip) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr)) << client.last_error();
  EXPECT_EQ(pr.param_count, 1u);
  EXPECT_FALSE(pr.cache_hit);
  EXPECT_NE(pr.normalized.find("$0"), std::string::npos) << pr.normalized;

  QueryResponse resp;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &resp))
      << client.last_error();
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
  // Prepare populated the cache, so the first execution already hits.
  EXPECT_EQ(resp.plan_cache_hit, 1);
  EXPECT_GE(server->stats().plan_cache_hits.load(), 1u);

  // Re-binding the same handle with a different parameter works.
  QueryResponse other;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(1)}, &other));
  EXPECT_EQ(other.status, WireStatus::kOk) << other.message;
}

TEST(PreparedStatementTest, AutoParameterizedLiteralsAreDefaults) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare("MATCH (p:PERSON) WHERE id(p) = 2 RETURN p.id",
                             &pr))
      << client.last_error();
  EXPECT_EQ(pr.param_count, 1u);
  EXPECT_NE(pr.normalized.find("$0"), std::string::npos) << pr.normalized;

  // Zero bindings fall back to the literal the query was prepared with.
  QueryResponse by_default;
  ASSERT_TRUE(client.Execute(pr.handle, {}, &by_default));
  ASSERT_EQ(by_default.status, WireStatus::kOk) << by_default.message;
  ASSERT_EQ(by_default.table.NumRows(), 1u);
  EXPECT_EQ(by_default.table.At(0, 0).AsInt(), 2);

  // Explicit bindings override the default.
  QueryResponse bound;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(3)}, &bound));
  ASSERT_EQ(bound.status, WireStatus::kOk) << bound.message;
  ASSERT_EQ(bound.table.NumRows(), 1u);
  EXPECT_EQ(bound.table.At(0, 0).AsInt(), 3);
}

TEST(PreparedStatementTest, CrossSessionTemplateReuse) {
  auto server = StartServer();
  Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()));
  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server->port()));

  // Different literals, same shape: both normalize to one template.
  PrepareResult a;
  ASSERT_TRUE(first.Prepare("MATCH (p:PERSON) WHERE id(p) = 1 RETURN p.id",
                            &a));
  EXPECT_FALSE(a.cache_hit);
  PrepareResult b;
  ASSERT_TRUE(second.Prepare("MATCH (p:PERSON) WHERE id(p) = 4 RETURN p.id",
                             &b));
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.normalized, b.normalized);
  EXPECT_GE(server->stats().plan_cache_hits.load(), 1u);

  // Each session's zero-binding default is its OWN prepare-time literal,
  // not whichever literal populated the shared template first.
  QueryResponse ra;
  ASSERT_TRUE(first.Execute(a.handle, {}, &ra));
  ASSERT_EQ(ra.status, WireStatus::kOk) << ra.message;
  ASSERT_EQ(ra.table.NumRows(), 1u);
  EXPECT_EQ(ra.table.At(0, 0).AsInt(), 1);
  QueryResponse rb;
  ASSERT_TRUE(second.Execute(b.handle, {}, &rb));
  ASSERT_EQ(rb.status, WireStatus::kOk) << rb.message;
  ASSERT_EQ(rb.table.NumRows(), 1u);
  EXPECT_EQ(rb.table.At(0, 0).AsInt(), 4);
}

TEST(PreparedStatementTest, UnknownHandleAnswersNotFound) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  QueryResponse resp;
  ASSERT_TRUE(client.Execute(12345, {Value::Int(0)}, &resp))
      << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kNotFound) << resp.message;
}

TEST(PreparedStatementTest, HandlesAreSessionScoped) {
  auto server = StartServer();
  Client owner;
  ASSERT_TRUE(owner.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(owner.Prepare(kKnowsTemplate, &pr));

  Client intruder;
  ASSERT_TRUE(intruder.Connect("127.0.0.1", server->port()));
  QueryResponse resp;
  ASSERT_TRUE(intruder.Execute(pr.handle, {Value::Int(0)}, &resp));
  EXPECT_EQ(resp.status, WireStatus::kNotFound) << resp.message;
}

TEST(PreparedStatementTest, ArityMismatchAnswersInvalidArgument) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr));
  QueryResponse resp;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0), Value::Int(1)},
                             &resp));
  EXPECT_EQ(resp.status, WireStatus::kInvalidArgument) << resp.message;
  EXPECT_NE(resp.message.find("parameter"), std::string::npos)
      << resp.message;
}

TEST(PreparedStatementTest, PrepareParseErrorIsCleanRefusal) {
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  EXPECT_FALSE(client.Prepare("MATCH garbage", &pr));
  EXPECT_NE(client.last_error().find("INVALID_ARGUMENT"), std::string::npos)
      << client.last_error();
  // The connection survives a clean refusal.
  EXPECT_TRUE(client.Ping());
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr)) << client.last_error();
}

TEST(PreparedStatementTest, StatsEpochBumpInvalidatesCachedTemplate) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr));

  QueryResponse warm;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &warm));
  ASSERT_EQ(warm.status, WireStatus::kOk) << warm.message;
  EXPECT_EQ(warm.plan_cache_hit, 1);

  // A statistics refresh invalidates the template; the next execution
  // re-plans (a miss) and repopulates the cache. (Re-installing the
  // current snapshot bumps the epoch, same as a real refresh.)
  fx.graph.catalog().InstallStats(fx.graph.catalog().stats());
  QueryResponse replanned;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &replanned));
  ASSERT_EQ(replanned.status, WireStatus::kOk) << replanned.message;
  EXPECT_EQ(replanned.plan_cache_hit, 0);
  EXPECT_EQ(Bytes(replanned.table), Bytes(warm.table));

  QueryResponse rewarmed;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &rewarmed));
  ASSERT_EQ(rewarmed.status, WireStatus::kOk) << rewarmed.message;
  EXPECT_EQ(rewarmed.plan_cache_hit, 1);
}

TEST(PreparedStatementTest, CompactionInstallInvalidatesCachedTemplate) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  auto server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr));

  QueryResponse warm;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &warm));
  ASSERT_EQ(warm.status, WireStatus::kOk) << warm.message;
  EXPECT_EQ(warm.plan_cache_hit, 1);

  // A delta-merge pass swaps relations into compressed segments: the
  // physical layout the cached plan was costed against is gone, so the
  // install must bump the stats epoch and force a re-plan. (Regression:
  // the install path used to leave the epoch untouched and stale plans
  // kept validating against pre-swap statistics.)
  uint64_t epoch_before = fx.graph.catalog().stats_epoch();
  CompactionOptions copts;
  copts.force = true;
  ASSERT_GT(fx.graph.CompactRelations(copts).relations_compacted, 0u);
  EXPECT_GT(fx.graph.catalog().stats_epoch(), epoch_before);

  QueryResponse replanned;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &replanned));
  ASSERT_EQ(replanned.status, WireStatus::kOk) << replanned.message;
  EXPECT_EQ(replanned.plan_cache_hit, 0);
  EXPECT_EQ(Bytes(replanned.table), Bytes(warm.table));

  QueryResponse rewarmed;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &rewarmed));
  ASSERT_EQ(rewarmed.status, WireStatus::kOk) << rewarmed.message;
  EXPECT_EQ(rewarmed.plan_cache_hit, 1);
}

TEST(PreparedStatementTest, EvictedTemplateIsReplannedTransparently) {
  ServiceConfig config;
  config.plan_cache_entries = 1;
  auto server = StartServer(config);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  PrepareResult knows;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &knows));
  // A second, differently-shaped statement evicts the first template.
  PrepareResult seek;
  ASSERT_TRUE(client.Prepare("MATCH (p:PERSON) WHERE id(p) = $0 RETURN p.id",
                             &seek));
  EXPECT_GE(server->stats().plan_cache_evictions.load(), 1u);

  // The evicted handle still executes correctly (cache miss, re-plan).
  QueryResponse resp;
  ASSERT_TRUE(client.Execute(knows.handle, {Value::Int(0)}, &resp));
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_EQ(resp.plan_cache_hit, 0);
}

TEST(PreparedStatementTest, CacheDisabledStillExecutes) {
  ServiceConfig config;
  config.plan_cache_entries = 0;
  auto server = StartServer(config);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  PrepareResult pr;
  ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr)) << client.last_error();
  EXPECT_FALSE(pr.cache_hit);
  QueryResponse resp;
  ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(0)}, &resp));
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  EXPECT_EQ(resp.plan_cache_hit, 0);
  EXPECT_EQ(server->stats().plan_cache_hits.load(), 0u);
}

// The acceptance differential: for every execution mode, a cached
// template bound over the wire must answer byte-identically to a
// cold-compiled plan with the literal inlined, across several bindings.
TEST(PreparedStatementTest, CachedPlanMatchesColdPlanAllModes) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  const ExecMode kModes[] = {ExecMode::kVolcano, ExecMode::kFlat,
                             ExecMode::kFactorized,
                             ExecMode::kFactorizedFused};
  for (ExecMode mode : kModes) {
    SCOPED_TRACE(ExecModeName(mode));
    ServiceConfig config;
    config.exec_mode = mode;
    auto server = StartServer(config);
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
    PrepareResult pr;
    ASSERT_TRUE(client.Prepare(kKnowsTemplate, &pr)) << client.last_error();

    for (int64_t person : {0, 1, 2, 5}) {
      SCOPED_TRACE(person);
      QueryResponse resp;
      ASSERT_TRUE(client.Execute(pr.handle, {Value::Int(person)}, &resp));
      ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;

      std::string literal =
          "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = " +
          std::to_string(person) + " RETURN f.id ORDER BY f.id ASC";
      Plan plan;
      ASSERT_TRUE(CompileQuery(literal, fx.graph, &plan).ok());
      ExecOptions options;
      options.collect_stats = false;
      QueryResult cold =
          Executor(mode, options).Run(plan, GraphView(&fx.graph));
      EXPECT_EQ(Bytes(resp.table), Bytes(cold.table));
    }
  }
}

// --- EXPLAIN ANALYZE est-vs-actual rows --------------------------------

TEST(PreparedStatementTest, ExplainAnalyzeShowsEstimatedRows) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  fx.graph.RebuildStats();
  Plan plan;
  ASSERT_TRUE(CompileQuery(
                  "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) RETURN f.id",
                  fx.graph, &plan)
                  .ok());
  AnnotateCardinalities(&plan, fx.graph,
                        CollectPlanColumnStats(plan, fx.graph));
  QueryResult r = Executor(ExecMode::kFlat).Run(plan, GraphView(&fx.graph));
  std::string text = ExplainAnalyze(plan, r);
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos) << text;
}

}  // namespace
}  // namespace ges
