// Property-based tests: random f-Trees must satisfy the factorization
// invariants — count DP == enumerator count, per-row multiplicities sum to
// the total, flatten output matches brute-force expansion, selection
// monotonicity.
#include <gtest/gtest.h>

#include "common/random.h"
#include "executor/ftree.h"

namespace ges {
namespace {

// Builds a random tree with up to `max_nodes` nodes and `max_fanout` rows
// per parent row; returns the tree. Every node gets one int64 column with
// globally unique values and a random selection vector.
std::unique_ptr<FTree> RandomTree(Rng& rng, int max_nodes, int max_fanout,
                                  double invalid_prob) {
  auto tree = std::make_unique<FTree>();
  struct Pending {
    FTreeNode* node;
    int depth;
  };
  int counter = 0;
  FTreeNode* root = tree->CreateRoot();
  {
    ValueVector col(ValueType::kInt64);
    size_t rows = 1 + rng.Uniform(4);
    for (size_t i = 0; i < rows; ++i) col.AppendInt(counter++);
    root->block.AddColumn("c0", std::move(col));
    tree->RegisterColumns(root);
  }
  std::vector<FTreeNode*> nodes{root};
  int made = 1;
  Rng local(rng.Next());
  while (made < max_nodes) {
    FTreeNode* parent = nodes[local.Uniform(nodes.size())];
    if (parent->children.size() >= 3) {
      if (nodes.size() == 1) break;
      continue;
    }
    FTreeNode* child = tree->AddChild(parent);
    size_t parent_rows = parent->block.NumRows();
    child->parent_index.resize(parent_rows);
    ValueVector col(ValueType::kInt64);
    uint64_t off = 0;
    for (size_t r = 0; r < parent_rows; ++r) {
      uint64_t n = local.Uniform(max_fanout + 1);  // may be 0 (empty range)
      child->parent_index[r] = IndexRange{off, off + n};
      for (uint64_t i = 0; i < n; ++i) col.AppendInt(counter++);
      off += n;
    }
    child->block.AddColumn("c" + std::to_string(made), std::move(col));
    tree->RegisterColumns(child);
    nodes.push_back(child);
    ++made;
  }
  // Random selections.
  for (FTreeNode* n : nodes) {
    if (local.NextDouble() < 0.7) {
      std::vector<uint8_t>& sel = n->MutableSel();
      for (auto& s : sel) s = local.NextDouble() < invalid_prob ? 0 : 1;
    }
  }
  return tree;
}

// Brute-force tuple count by recursive expansion (independent oracle).
uint64_t BruteForceCount(const FTreeNode* node, uint64_t row) {
  if (!node->RowValid(row)) return 0;
  uint64_t prod = 1;
  for (const auto& child : node->children) {
    const IndexRange& range = child->parent_index[row];
    uint64_t sum = 0;
    for (uint64_t r = range.begin; r < range.end; ++r) {
      sum += BruteForceCount(child.get(), r);
    }
    prod *= sum;
    if (prod == 0) return 0;
  }
  return prod;
}

uint64_t BruteForceTotal(const FTree& tree) {
  uint64_t total = 0;
  const FTreeNode* root = tree.root();
  for (uint64_t r = 0; r < root->block.NumRows(); ++r) {
    total += BruteForceCount(root, r);
  }
  return total;
}

class FTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FTreeRandomTest, CountDpMatchesEnumeratorAndOracle) {
  Rng rng(GetParam() * 7919 + 1);
  auto tree = RandomTree(rng, 6, 4, 0.3);
  uint64_t dp = tree->CountTuples();
  uint64_t oracle = BruteForceTotal(*tree);
  TupleEnumerator e(*tree);
  uint64_t enumerated = 0;
  while (e.Next()) ++enumerated;
  EXPECT_EQ(dp, oracle);
  EXPECT_EQ(enumerated, oracle);
}

TEST_P(FTreeRandomTest, PerRowMultiplicitiesSumToTotal) {
  Rng rng(GetParam() * 104729 + 3);
  auto tree = RandomTree(rng, 5, 4, 0.25);
  uint64_t total = tree->CountTuples();
  for (const FTreeNode* node : tree->Preorder()) {
    std::vector<uint64_t> counts = tree->TupleCountsForNode(node);
    uint64_t sum = 0;
    for (uint64_t c : counts) sum += c;
    EXPECT_EQ(sum, total) << "node multiplicities must partition the tuples";
  }
}

TEST_P(FTreeRandomTest, MultiplicityMatchesEnumerator) {
  Rng rng(GetParam() * 31337 + 11);
  auto tree = RandomTree(rng, 5, 3, 0.2);
  // Pick a node; count per-row occurrences through the enumerator.
  auto nodes = tree->Preorder();
  const FTreeNode* target = nodes[nodes.size() / 2];
  std::vector<uint64_t> observed(target->block.NumRows(), 0);
  TupleEnumerator e(*tree);
  while (e.Next()) ++observed[e.RowOf(target)];
  EXPECT_EQ(tree->TupleCountsForNode(target), observed);
}

TEST_P(FTreeRandomTest, FlattenRowCountMatchesAndRespectsLimit) {
  Rng rng(GetParam() * 271 + 5);
  auto tree = RandomTree(rng, 6, 3, 0.3);
  uint64_t total = tree->CountTuples();

  std::vector<std::string> cols;
  Schema schema;
  for (const FTreeNode* n : tree->Preorder()) {
    for (const ColumnDef& c : n->block.schema().columns()) {
      cols.push_back(c.name);
      schema.Add(c.name, c.type);
    }
  }
  FlatBlock out(schema);
  tree->Flatten(cols, &out);
  EXPECT_EQ(out.NumRows(), total);

  if (total > 1) {
    FlatBlock limited(schema);
    tree->Flatten(cols, &limited, total / 2);
    EXPECT_EQ(limited.NumRows(), total / 2);
  }
}

TEST_P(FTreeRandomTest, InvalidatingRowsNeverIncreasesCount) {
  Rng rng(GetParam() * 13 + 17);
  auto tree = RandomTree(rng, 5, 3, 0.0);
  uint64_t before = tree->CountTuples();
  // Invalidate a random row of a random node.
  auto nodes = tree->PreorderMutable();
  Rng pick(GetParam());
  FTreeNode* node = nodes[pick.Uniform(nodes.size())];
  if (node->block.NumRows() > 0) {
    node->MutableSel()[pick.Uniform(node->block.NumRows())] = 0;
  }
  EXPECT_LE(tree->CountTuples(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FTreeRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace ges
