// Wire-protocol robustness: a live server fed truncated, oversized and
// outright random frames must answer with clean error status frames (or
// at worst close the one offending connection) and keep serving
// well-formed clients. Deterministic xorshift fuzzing — failures
// reproduce.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/snb_generator.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "storage/graph.h"

namespace ges::service {
namespace {

class FuzzServer : public ::testing::Test {
 protected:
  void SetUp() override {
    SnbConfig snb;
    snb.scale_factor = 0.003;
    data_ = GenerateSnb(snb, &graph_);
    server_ = std::make_unique<Server>(&graph_, &data_, ServiceConfig{});
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void TearDown() override { server_->Drain(2.0); }

  // The liveness probe: after any abuse, a well-formed client still gets
  // full service.
  void ExpectServerHealthy() {
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()))
        << c.last_error();
    EXPECT_TRUE(c.Ping()) << c.last_error();
    QueryResponse resp;
    ASSERT_TRUE(c.RunBI(1, &resp)) << c.last_error();
    EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
    c.Close();
  }

  int ConnectRaw() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Bounded reads: the fuzzer must never hang on a server that
    // (correctly) sends nothing back.
    struct timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
  }

  static void WriteRaw(int fd, const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return;  // server already closed on us — acceptable
      off += static_cast<size_t>(n);
    }
  }

  Graph graph_;
  SnbData data_;
  std::unique_ptr<Server> server_;
};

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

std::string LengthPrefix(uint32_t len) {
  std::string hdr(4, '\0');
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  return hdr;
}

TEST_F(FuzzServer, OversizedFrameGetsCleanRefusal) {
  int fd = ConnectRaw();
  WriteRaw(fd, LengthPrefix(kMaxFrameBytes + 1));
  // The refusal arrives as an explicit error frame, not a silent RST.
  std::string payload;
  ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk);
  WireReader in(payload);
  EXPECT_EQ(static_cast<MsgType>(in.GetU8()), MsgType::kError);
  EXPECT_EQ(static_cast<WireStatus>(in.GetU8()),
            WireStatus::kInvalidArgument);
  EXPECT_NE(in.GetString().find("maximum frame size"), std::string::npos);
  // ...after which the server closes the connection.
  EXPECT_EQ(ReadFrame(fd, &payload), ReadResult::kClosed);
  ::close(fd);
  ExpectServerHealthy();
}

TEST_F(FuzzServer, EmptyAndTruncatedBodiesGetErrorFrames) {
  struct Case {
    std::string name;
    std::string body;  // frame payload (maybe empty / truncated)
  };
  std::vector<Case> cases;
  cases.push_back({"empty frame", ""});
  {
    WireBuf b;  // kSetParam with no key/value
    b.PutU8(static_cast<uint8_t>(MsgType::kSetParam));
    cases.push_back({"truncated set-param", b.Take()});
  }
  {
    WireBuf b;  // kGetParam with a length-prefixed string cut short
    b.PutU8(static_cast<uint8_t>(MsgType::kGetParam));
    b.PutU32(100);  // claims a 100-byte key, provides none
    cases.push_back({"lying get-param", b.Take()});
  }
  {
    WireBuf b;  // kSubscribe missing everything after the type byte
    b.PutU8(static_cast<uint8_t>(MsgType::kSubscribe));
    cases.push_back({"truncated subscribe", b.Take()});
  }
  {
    WireBuf b;  // kCancel with a half-written id
    b.PutU8(static_cast<uint8_t>(MsgType::kCancel));
    b.PutU8(0x42);
    cases.push_back({"truncated cancel", b.Take()});
  }

  for (const Case& c : cases) {
    int fd = ConnectRaw();
    WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(c.body.size())) + c.body);
    std::string payload;
    ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk) << c.name;
    WireReader in(payload);
    EXPECT_EQ(static_cast<MsgType>(in.GetU8()), MsgType::kError) << c.name;
    EXPECT_EQ(static_cast<WireStatus>(in.GetU8()),
              WireStatus::kInvalidArgument)
        << c.name;
    ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(FuzzServer, MalformedPrepareFramesGetErrorFrames) {
  struct Case {
    std::string name;
    std::string body;
  };
  std::vector<Case> cases;
  {
    WireBuf b;  // kPrepare with no query text at all
    b.PutU8(static_cast<uint8_t>(MsgType::kPrepare));
    cases.push_back({"truncated prepare", b.Take()});
  }
  {
    WireBuf b;  // kPrepare claiming a 500-byte text, providing 3
    b.PutU8(static_cast<uint8_t>(MsgType::kPrepare));
    b.PutU32(500);
    b.PutU8('M');
    b.PutU8('A');
    b.PutU8('T');
    cases.push_back({"lying prepare", b.Take()});
  }
  {
    WireBuf b;  // kPrepare with trailing junk after the text
    b.PutU8(static_cast<uint8_t>(MsgType::kPrepare));
    b.PutString("MATCH (p:PERSON) RETURN p.id");
    b.PutU64(0xdeadbeef);
    cases.push_back({"oversupplied prepare", b.Take()});
  }
  for (const Case& c : cases) {
    int fd = ConnectRaw();
    WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(c.body.size())) + c.body);
    std::string payload;
    ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk) << c.name;
    WireReader in(payload);
    EXPECT_EQ(static_cast<MsgType>(in.GetU8()), MsgType::kError) << c.name;
    EXPECT_EQ(static_cast<WireStatus>(in.GetU8()),
              WireStatus::kInvalidArgument)
        << c.name;
    ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(FuzzServer, MalformedExecuteFramesAnswerStatusNotCrash) {
  // Well-framed kExecute bodies with broken content answer a kResult
  // status frame (the decoder could recover the query id) or an error
  // frame — never silence, never a crash.
  struct Case {
    std::string name;
    std::string body;
    WireStatus want;
  };
  std::vector<Case> cases;
  {
    // Unknown handle, otherwise perfectly formed.
    ExecuteRequest req;
    req.query_id = 7;
    req.handle = 0xdeadbeefULL;
    cases.push_back({"unknown handle", EncodeExecuteRequest(req),
                     WireStatus::kNotFound});
  }
  {
    WireBuf b;  // truncated before the handle
    b.PutU8(static_cast<uint8_t>(MsgType::kExecute));
    b.PutU64(9);  // query id only
    cases.push_back({"truncated execute", b.Take(),
                     WireStatus::kInvalidArgument});
  }
  {
    WireBuf b;  // claims 3 bindings, carries 1
    b.PutU8(static_cast<uint8_t>(MsgType::kExecute));
    b.PutU64(11);  // query id
    b.PutU64(1);   // handle
    b.PutU32(0);   // deadline
    b.PutU64(0);   // min_version
    b.PutU32(3);   // binding count lies
    PutValue(&b, Value::Int(42));
    cases.push_back({"truncated bindings", b.Take(),
                     WireStatus::kInvalidArgument});
  }
  {
    WireBuf b;  // binding with a garbage type tag
    b.PutU8(static_cast<uint8_t>(MsgType::kExecute));
    b.PutU64(13);
    b.PutU64(1);
    b.PutU32(0);
    b.PutU64(0);
    b.PutU32(1);
    b.PutU8(0xee);  // no such ValueType
    b.PutU64(1);
    cases.push_back({"garbage value tag", b.Take(),
                     WireStatus::kInvalidArgument});
  }
  for (const Case& c : cases) {
    int fd = ConnectRaw();
    WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(c.body.size())) + c.body);
    std::string payload;
    ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk) << c.name;
    WireReader in(payload);
    MsgType got = static_cast<MsgType>(in.GetU8());
    if (got == MsgType::kResult) {
      QueryResponse resp;
      ASSERT_TRUE(DecodeQueryResponse(&in, &resp)) << c.name;
      EXPECT_EQ(resp.status, c.want) << c.name << ": " << resp.message;
    } else {
      EXPECT_EQ(got, MsgType::kError) << c.name;
      EXPECT_EQ(static_cast<WireStatus>(in.GetU8()),
                WireStatus::kInvalidArgument)
          << c.name;
    }
    ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(FuzzServer, MalformedKillQueryFramesGetErrorFrames) {
  // The admin kill frame is strictly framed: exactly one u64 id. Anything
  // shorter or longer is refused with a clean error frame.
  struct Case {
    std::string name;
    std::string body;
  };
  std::vector<Case> cases;
  {
    WireBuf b;  // no id at all
    b.PutU8(static_cast<uint8_t>(MsgType::kKillQuery));
    cases.push_back({"empty kill-query", b.Take()});
  }
  {
    WireBuf b;  // half an id
    b.PutU8(static_cast<uint8_t>(MsgType::kKillQuery));
    b.PutU32(0x1234);
    cases.push_back({"truncated kill-query", b.Take()});
  }
  {
    WireBuf b;  // id plus trailing junk
    b.PutU8(static_cast<uint8_t>(MsgType::kKillQuery));
    b.PutU64(42);
    b.PutU32(0xdead);
    cases.push_back({"oversupplied kill-query", b.Take()});
  }
  for (const Case& c : cases) {
    int fd = ConnectRaw();
    WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(c.body.size())) + c.body);
    std::string payload;
    ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk) << c.name;
    WireReader in(payload);
    EXPECT_EQ(static_cast<MsgType>(in.GetU8()), MsgType::kError) << c.name;
    EXPECT_EQ(static_cast<WireStatus>(in.GetU8()),
              WireStatus::kInvalidArgument)
        << c.name;
    ::close(fd);
  }

  // A well-formed kill for an id that does not exist is NOT an error: it
  // answers kKillQueryOk with a zero count.
  {
    int fd = ConnectRaw();
    WireBuf b;
    b.PutU8(static_cast<uint8_t>(MsgType::kKillQuery));
    b.PutU64(0x4242424242424242ull);
    std::string body = b.Take();
    WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(body.size())) + body);
    std::string payload;
    ASSERT_EQ(ReadFrame(fd, &payload), ReadResult::kOk);
    WireReader in(payload);
    EXPECT_EQ(static_cast<MsgType>(in.GetU8()), MsgType::kKillQueryOk);
    EXPECT_EQ(in.GetU32(), 0u);
    ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(FuzzServer, RandomByteStreamsDontWedgeTheServer) {
  uint64_t seed = 0x5eed5eed5eed5eedull;
  for (int conn = 0; conn < 24; ++conn) {
    int fd = ConnectRaw();
    // A burst of raw garbage: random lengths, random bytes — sometimes a
    // plausible frame header, usually not.
    int bursts = 1 + static_cast<int>(XorShift(&seed) % 4);
    for (int b = 0; b < bursts; ++b) {
      size_t n = 1 + static_cast<size_t>(XorShift(&seed) % 512);
      std::string blob(n, '\0');
      for (size_t i = 0; i < n; ++i) {
        blob[i] = static_cast<char>(XorShift(&seed) & 0xff);
      }
      WriteRaw(fd, blob);
    }
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the server says (error frames) until it closes.
    char sink[256];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
    ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(FuzzServer, RandomWellFramedPayloadsAnswerOrCloseCleanly) {
  uint64_t seed = 0xfeedface12345678ull;
  for (int conn = 0; conn < 24; ++conn) {
    int fd = ConnectRaw();
    for (int f = 0; f < 8; ++f) {
      // A syntactically valid frame wrapping a random body: the server
      // must parse-or-refuse every one without dying.
      size_t n = static_cast<size_t>(XorShift(&seed) % 64);
      std::string body(n, '\0');
      for (size_t i = 0; i < n; ++i) {
        body[i] = static_cast<char>(XorShift(&seed) & 0xff);
      }
      WriteRaw(fd, LengthPrefix(static_cast<uint32_t>(n)) + body);
    }
    ::shutdown(fd, SHUT_WR);
    char sink[256];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
    ::close(fd);
  }
  ExpectServerHealthy();
}

}  // namespace
}  // namespace ges::service
