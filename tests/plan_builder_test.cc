// PlanBuilder / plan-structure tests.
#include <gtest/gtest.h>

#include "executor/plan.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

TEST(PlanBuilderTest, OpsAppendInOrder) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 1)
      .Expand("p", "f", {tiny.knows_out})
      .GetProperty("f", tiny.id, ValueType::kInt64, "fid")
      .Filter(Expr::Gt(Expr::Col("fid"), Expr::Lit(Value::Int(0))))
      .Project({{"fid", "x"}})
      .OrderBy({{"x", false}}, 3)
      .Limit(2)
      .Distinct()
      .ExpandInto("p", "f", {tiny.knows_out}, true)
      .Output({"x"});
  Plan plan = b.Build();
  ASSERT_EQ(plan.ops.size(), 9u);
  EXPECT_EQ(plan.ops[0].type, OpType::kNodeByIdSeek);
  EXPECT_EQ(plan.ops[1].type, OpType::kExpand);
  EXPECT_EQ(plan.ops[2].type, OpType::kGetProperty);
  EXPECT_EQ(plan.ops[3].type, OpType::kFilter);
  EXPECT_EQ(plan.ops[4].type, OpType::kProject);
  EXPECT_EQ(plan.ops[5].type, OpType::kOrderBy);
  EXPECT_EQ(plan.ops[6].type, OpType::kLimit);
  EXPECT_EQ(plan.ops[7].type, OpType::kDistinct);
  EXPECT_EQ(plan.ops[8].type, OpType::kExpandInto);
  EXPECT_TRUE(plan.ops[8].anti);
  EXPECT_EQ(plan.output, std::vector<std::string>{"x"});
  EXPECT_EQ(plan.name, "t");
}

TEST(PlanBuilderTest, ExpandExCarriesAuxColumns) {
  TinyGraph tiny;
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny.person, 0)
      .ExpandEx("p", "f", {tiny.knows_out}, 2, 3, true, true, "d", "s");
  Plan plan = b.Build();
  const PlanOp& op = plan.ops[1];
  EXPECT_EQ(op.min_hops, 2);
  EXPECT_EQ(op.max_hops, 3);
  EXPECT_TRUE(op.distinct);
  EXPECT_TRUE(op.exclude_start);
  EXPECT_EQ(op.distance_column, "d");
  EXPECT_EQ(op.stamp_column, "s");
}

TEST(PlanBuilderTest, OpTypeNamesAreUnique) {
  std::set<std::string> names;
  for (int t = 0; t <= static_cast<int>(OpType::kAggProjectTop); ++t) {
    names.insert(OpTypeName(static_cast<OpType>(t)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(OpType::kAggProjectTop) + 1);
  EXPECT_EQ(names.count("?"), 0u);
}

TEST(GraphViewTest, HasEdgeAcrossRelations) {
  TinyGraph tiny;
  GraphView view(tiny.graph.get());
  EXPECT_TRUE(view.HasEdge({tiny.knows_out}, tiny.persons[0],
                           tiny.persons[1]));
  EXPECT_FALSE(view.HasEdge({tiny.knows_out}, tiny.persons[0],
                            tiny.persons[3]));
  // Union over several relations.
  EXPECT_TRUE(view.HasEdge({tiny.knows_out, tiny.person_messages},
                           tiny.persons[1], tiny.messages[0]));
}

TEST(GraphViewTest, SnapshotPinning) {
  TinyGraph tiny;
  GraphView pinned(tiny.graph.get());
  {
    auto txn = tiny.graph->BeginWrite({tiny.persons[0], tiny.persons[3]});
    ASSERT_TRUE(
        txn->AddEdge(tiny.knows, tiny.persons[0], tiny.persons[3], 1).ok());
    txn->Commit();
  }
  GraphView fresh(tiny.graph.get());
  EXPECT_FALSE(pinned.HasEdge({tiny.knows_out}, tiny.persons[0],
                              tiny.persons[3]));
  EXPECT_TRUE(fresh.HasEdge({tiny.knows_out}, tiny.persons[0],
                            tiny.persons[3]));
}

}  // namespace
}  // namespace ges
