// Differential tests for the compiled expression kernels: random expression
// trees over random typed columns must match the interpreted BoundExpr
// oracle row-by-row — both as selection-vector filters and as computed
// projections — and whole plans must return identical relations in every
// ExecMode with the kernels on and off.
#include "executor/vector_expr.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/string_dict.h"
#include "common/value.h"
#include "executor/executor.h"
#include "executor/expression.h"
#include "executor/schema.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SortedRows;

constexpr size_t kRows = 512;

const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "", "a", "ab", "alpha", "beta", "gamma", "delta", "zzz", "Alpha", "b"};
  return pool;
}

// Random columns + schema. One string column stays dictionary-encoded, one
// decays to owned strings, so both kernel paths (code compare / decoded
// compare) are exercised.
struct ColumnSet {
  Schema schema;
  std::vector<ValueVector> columns;
  std::vector<const ValueVector*> phys;
  StringDict dict;

  explicit ColumnSet(std::mt19937& rng) {
    auto add = [&](const std::string& name, ValueType t, bool use_dict) {
      schema.Add(name, t);
      columns.emplace_back(t);
      ValueVector& col = columns.back();
      if (t == ValueType::kString && use_dict) col.InitDict(&dict);
      std::uniform_int_distribution<int> ints(-1000, 1000);
      std::uniform_int_distribution<size_t> strs(0, StringPool().size() - 1);
      std::uniform_real_distribution<double> dbls(-100.0, 100.0);
      for (size_t r = 0; r < kRows; ++r) {
        switch (t) {
          case ValueType::kString:
            col.AppendString(StringPool()[strs(rng)]);
            break;
          case ValueType::kDouble:
            // One row in 32 is NaN: comparisons must stay NaN-tolerant.
            col.AppendDouble(ints(rng) % 32 == 0
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : dbls(rng));
            break;
          case ValueType::kBool:
            col.AppendValue(Value::Bool(ints(rng) % 2 == 0));
            break;
          default:
            col.AppendInt(ints(rng));
            break;
        }
      }
    };
    // Pool strings are interned up front so the dict column never decays.
    for (const std::string& s : StringPool()) dict.Intern(s);
    add("i0", ValueType::kInt64, false);
    add("i1", ValueType::kInt64, false);
    add("d0", ValueType::kDouble, false);
    add("s0", ValueType::kString, true);   // dictionary codes
    add("s1", ValueType::kString, false);  // owned strings
    add("t0", ValueType::kDate, false);
    add("b0", ValueType::kBool, false);
    for (const ValueVector& c : columns) phys.push_back(&c);
    EXPECT_TRUE(columns[3].dict_encoded());
    EXPECT_FALSE(columns[4].dict_encoded());
  }
};

// Random expression generator. Magnitudes are bounded so arithmetic cannot
// overflow int64 (UB under UBSan): |const| <= 1000, arith depth <= 2.
struct ExprGen {
  std::mt19937& rng;
  const Schema& schema;

  int Pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  }

  Value RandConst() {
    switch (Pick(6)) {
      case 0:
        return Value::Int(Pick(2001) - 1000);
      case 1:
        return Value::Double(Pick(4) == 0
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : (Pick(2001) - 1000) / 7.0);
      case 2:
        return Value::String(StringPool()[Pick(
            static_cast<int>(StringPool().size()))]);
      case 3:
        return Value::Bool(Pick(2) == 0);
      case 4:
        return Value::Date(Pick(2001) - 1000);
      default:
        return Value::Null();
    }
  }

  ExprPtr Val(int depth) {
    int c = Pick(depth > 0 ? 4 : 2);
    if (c == 0) return Expr::Lit(RandConst());
    if (c == 1) {
      return Expr::Col(
          schema[Pick(static_cast<int>(schema.size()))].name);
    }
    ExprPtr a = Val(depth - 1);
    ExprPtr b = Val(depth - 1);
    switch (Pick(3)) {
      case 0:
        return Expr::Add(a, b);
      case 1:
        return Expr::Sub(a, b);
      default:
        return Expr::Mul(a, b);
    }
  }

  ExprPtr Bool(int depth) {
    int c = Pick(depth > 0 ? 8 : 5);
    switch (c) {
      case 0: {  // comparison
        static const ExprOp kOps[] = {ExprOp::kEq, ExprOp::kNe, ExprOp::kLt,
                                      ExprOp::kLe, ExprOp::kGt, ExprOp::kGe};
        return Expr::Cmp(kOps[Pick(6)], Val(2), Val(2));
      }
      case 1: {  // IN
        std::vector<Value> list;
        int n = 1 + Pick(4);
        for (int i = 0; i < n; ++i) list.push_back(RandConst());
        return Expr::In(Val(1), std::move(list));
      }
      case 2:
        return Expr::IsNull(Val(1));
      case 3:
        return Expr::StartsWith(
            Val(1), StringPool()[Pick(static_cast<int>(StringPool().size()))]);
      case 4:  // raw value in bool position
        return Val(1);
      case 5:
        return Expr::Not(Bool(depth - 1));
      case 6:
        return Expr::And(Bool(depth - 1), Bool(depth - 1));
      default:
        return Expr::Or(Bool(depth - 1), Bool(depth - 1));
    }
  }
};

// The oracle: interpreted evaluation against the same columns.
bool OracleRow(const BoundExpr& pred, const std::vector<ValueVector>& cols,
               size_t r) {
  auto getter = [&](int i) -> Value { return cols[i].GetValue(r); };
  return pred.Eval(getter).AsBool();
}

class KernelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelDifferentialTest, FilterMatchesInterpreterRowByRow) {
  std::mt19937 rng(1234 + GetParam());
  ColumnSet cs(rng);
  ExprGen gen{rng, cs.schema};

  int compiled_count = 0;
  for (int trial = 0; trial < 150; ++trial) {
    ExprPtr e = gen.Bool(3);
    std::unique_ptr<CompiledExpr> kernel =
        CompiledExpr::CompileFilter(*e, cs.schema, cs.phys);
    ASSERT_NE(kernel, nullptr) << e->ToString();
    ++compiled_count;

    std::vector<uint8_t> sel(kRows, 1);
    kernel->EvalFilter(sel.data(), 0, kRows);
    BoundExpr pred = BoundExpr::Bind(*e, cs.schema);
    for (size_t r = 0; r < kRows; ++r) {
      bool expect = OracleRow(pred, cs.columns, r);
      ASSERT_EQ(sel[r] != 0, expect)
          << "row " << r << " of " << e->ToString();
    }
  }
  EXPECT_EQ(compiled_count, 150);
}

TEST_P(KernelDifferentialTest, FilterOnlyRefinesItsRange) {
  std::mt19937 rng(4321 + GetParam());
  ColumnSet cs(rng);
  ExprGen gen{rng, cs.schema};

  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr e = gen.Bool(2);
    std::unique_ptr<CompiledExpr> kernel =
        CompiledExpr::CompileFilter(*e, cs.schema, cs.phys);
    ASSERT_NE(kernel, nullptr);

    // Pre-zeroed rows must stay zero; rows outside [lo, hi) untouched.
    std::vector<uint8_t> sel(kRows);
    for (size_t r = 0; r < kRows; ++r) sel[r] = (r % 3 != 0) ? 1 : 0;
    std::vector<uint8_t> before = sel;
    size_t lo = kRows / 4, hi = 3 * kRows / 4;
    kernel->EvalFilter(sel.data(), lo, hi);

    BoundExpr pred = BoundExpr::Bind(*e, cs.schema);
    for (size_t r = 0; r < kRows; ++r) {
      if (r < lo || r >= hi) {
        ASSERT_EQ(sel[r], before[r]) << "row " << r << " outside range";
      } else if (before[r] == 0) {
        ASSERT_EQ(sel[r], 0) << "zero row revived at " << r;
      } else {
        ASSERT_EQ(sel[r] != 0, OracleRow(pred, cs.columns, r))
            << "row " << r << " of " << e->ToString();
      }
    }
  }
}

TEST_P(KernelDifferentialTest, ProjectMatchesInterpreterRowByRow) {
  std::mt19937 rng(9876 + GetParam());
  ColumnSet cs(rng);
  ExprGen gen{rng, cs.schema};

  for (int trial = 0; trial < 80; ++trial) {
    // Mix of value expressions and predicates-as-values (BoolWrap path).
    ExprPtr e = trial % 3 == 0 ? gen.Bool(2) : gen.Val(2);
    std::unique_ptr<CompiledExpr> kernel =
        CompiledExpr::CompileProject(*e, cs.schema, cs.phys);
    ASSERT_NE(kernel, nullptr) << e->ToString();

    ValueVector got(kernel->result_type());
    kernel->EvalProject(0, kRows, &got);
    ASSERT_EQ(got.size(), kRows);

    ValueVector want(kernel->result_type());
    BoundExpr be = BoundExpr::Bind(*e, cs.schema);
    for (size_t r = 0; r < kRows; ++r) {
      auto getter = [&](int i) -> Value { return cs.columns[i].GetValue(r); };
      want.AppendValue(be.Eval(getter));
    }
    for (size_t r = 0; r < kRows; ++r) {
      Value g = got.GetValue(r);
      Value w = want.GetValue(r);
      // NaN != NaN under Value::operator==; compare bit patterns instead.
      if (g.type() == ValueType::kDouble && w.type() == ValueType::kDouble) {
        ASSERT_EQ(g.AsInt(), w.AsInt())
            << "row " << r << " of " << e->ToString();
      } else {
        ASSERT_EQ(g, w) << "row " << r << " of " << e->ToString();
      }
    }
  }
}

TEST_P(KernelDifferentialTest, DictColumnProjectAdoptsDictionary) {
  std::mt19937 rng(555 + GetParam());
  ColumnSet cs(rng);
  ExprPtr e = Expr::Col("s0");
  std::unique_ptr<CompiledExpr> kernel =
      CompiledExpr::CompileProject(*e, cs.schema, cs.phys);
  ASSERT_NE(kernel, nullptr);
  ASSERT_EQ(kernel->result_type(), ValueType::kString);
  ValueVector out(ValueType::kString);
  kernel->EvalProject(0, kRows, &out);
  EXPECT_TRUE(out.dict_encoded());  // code copy, not string copy
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(out.GetString(r), cs.columns[3].GetString(r)) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Range(0, 8));

// --- end-to-end: every ExecMode, kernels on vs off ----------------------

// A graph whose single label carries int, double, string (dictionary),
// and date properties — enough surface for the random predicates above.
struct PropGraph {
  Graph graph;
  LabelId node = kInvalidLabel;
  LabelId link = kInvalidLabel;
  PropertyId id, age, score, name, day;
  RelationId out_rel = kInvalidRelation;

  explicit PropGraph(uint32_t seed) {
    std::mt19937 rng(seed);
    Catalog& c = graph.catalog();
    node = c.AddVertexLabel("NODE");
    link = c.AddEdgeLabel("LINK");
    id = c.AddProperty(node, "id", ValueType::kInt64);
    age = c.AddProperty(node, "age", ValueType::kInt64);
    score = c.AddProperty(node, "score", ValueType::kDouble);
    name = c.AddProperty(node, "name", ValueType::kString);
    day = c.AddProperty(node, "day", ValueType::kDate);
    graph.RegisterRelation(node, link, node);

    std::uniform_int_distribution<int> ints(-1000, 1000);
    std::uniform_real_distribution<double> dbls(-100.0, 100.0);
    std::uniform_int_distribution<size_t> strs(0, StringPool().size() - 1);
    constexpr int kN = 400;
    std::vector<VertexId> vs;
    for (int i = 0; i < kN; ++i) {
      VertexId v = graph.AddVertexBulk(node, i);
      graph.SetPropertyBulk(v, id, Value::Int(i));
      graph.SetPropertyBulk(v, age, Value::Int(ints(rng)));
      graph.SetPropertyBulk(v, score, Value::Double(dbls(rng)));
      graph.SetPropertyBulkString(v, name, StringPool()[strs(rng)]);
      graph.SetPropertyBulk(v, day, Value::Date(ints(rng)));
      vs.push_back(v);
    }
    for (int i = 0; i < kN; ++i) {
      for (int e = 0; e < 3; ++e) {
        graph.AddEdgeBulk(link, vs[i], vs[(i * 7 + e * 13 + 1) % kN], 0);
      }
    }
    graph.FinalizeBulk();
    out_rel = graph.FindRelation(node, link, node, Direction::kOut);
  }
};

TEST(KernelEngineEquivalenceTest, AllModesAgreeKernelsOnAndOff) {
  PropGraph pg(99);
  GraphView view(&pg.graph);
  std::mt19937 rng(2024);

  Schema pred_schema;
  pred_schema.Add("age", ValueType::kInt64);
  pred_schema.Add("score", ValueType::kDouble);
  pred_schema.Add("name", ValueType::kString);
  pred_schema.Add("day", ValueType::kDate);
  ExprGen gen{rng, pred_schema};

  for (int trial = 0; trial < 25; ++trial) {
    Plan plan;
    plan.name = "kernels_e2e";
    {
      PlanOp scan;
      scan.type = OpType::kScanByLabel;
      scan.out_column = "n";
      scan.label = pg.node;
      plan.ops.push_back(std::move(scan));
    }
    auto get = [&](const char* col, PropertyId p, ValueType t) {
      PlanOp op;
      op.type = OpType::kGetProperty;
      op.in_column = "n";
      op.out_column = col;
      op.property = p;
      op.property_type = t;
      plan.ops.push_back(std::move(op));
    };
    get("age", pg.age, ValueType::kInt64);
    get("score", pg.score, ValueType::kDouble);
    get("name", pg.name, ValueType::kString);
    get("day", pg.day, ValueType::kDate);
    {
      PlanOp f;
      f.type = OpType::kFilter;
      f.predicate = gen.Bool(3);
      plan.ops.push_back(std::move(f));
    }
    {
      PlanOp pr;
      pr.type = OpType::kProject;
      pr.computed.push_back(
          ComputedColumn{Expr::Add(Expr::Col("age"), Expr::Lit(Value::Int(1))),
                         "age1", ValueType::kInt64});
      plan.ops.push_back(std::move(pr));
    }
    plan.output = {"n", "age", "score", "name", "day", "age1"};

    ExecOptions oracle_opts;
    oracle_opts.vector_kernels = false;
    std::vector<std::string> baseline =
        SortedRows(Executor(ExecMode::kFlat, oracle_opts).Run(plan, view).table);
    for (ExecMode mode : {ExecMode::kVolcano, ExecMode::kFlat,
                          ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
      for (bool kernels : {true, false}) {
        ExecOptions o;
        o.vector_kernels = kernels;
        auto rows = SortedRows(Executor(mode, o).Run(plan, view).table);
        EXPECT_EQ(rows, baseline)
            << "mode=" << ExecModeName(mode) << " kernels=" << kernels
            << " trial=" << trial;
      }
    }
  }
}

// The fused expand-filter path: predicates over a neighbor property, with
// and without keeping the property column, kernels on and off.
TEST(KernelEngineEquivalenceTest, FusedExpandFilterAgrees) {
  PropGraph pg(7);
  GraphView view(&pg.graph);
  std::mt19937 rng(31);

  for (int trial = 0; trial < 20; ++trial) {
    std::uniform_int_distribution<int> ints(-1000, 1000);
    ExprPtr pred;
    switch (trial % 4) {
      case 0:
        pred = Expr::Gt(Expr::Col("m_age"), Expr::Lit(Value::Int(ints(rng))));
        break;
      case 1:
        pred = Expr::Eq(Expr::Col("m_name"),
                        Expr::Lit(Value::String(
                            StringPool()[trial % StringPool().size()])));
        break;
      case 2:
        pred = Expr::StartsWith(Expr::Col("m_name"), "a");
        break;
      default:
        pred = Expr::And(
            Expr::Ge(Expr::Col("m_age"), Expr::Lit(Value::Int(-500))),
            Expr::Ne(Expr::Col("m_name"), Expr::Lit(Value::String("zzz"))));
        break;
    }
    Plan plan;
    plan.name = "fused_expand_filter";
    {
      PlanOp scan;
      scan.type = OpType::kScanByLabel;
      scan.out_column = "n";
      scan.label = pg.node;
      plan.ops.push_back(std::move(scan));
    }
    {
      PlanOp ex;
      ex.type = OpType::kExpandFiltered;
      ex.in_column = "n";
      ex.out_column = "m";
      ex.rels = {pg.out_rel};
      ex.property = trial % 4 == 0 ? pg.age : pg.name;
      ex.property_type =
          trial % 4 == 0 ? ValueType::kInt64 : ValueType::kString;
      ex.keep_property = trial % 2 == 0;
      ex.predicate = pred;
      plan.ops.push_back(std::move(ex));
    }
    plan.output = {"n", "m"};

    ExecOptions oracle_opts;
    oracle_opts.vector_kernels = false;
    std::vector<std::string> baseline = SortedRows(
        Executor(ExecMode::kFactorizedFused, oracle_opts).Run(plan, view).table);
    for (bool kernels : {true, false}) {
      ExecOptions o;
      o.vector_kernels = kernels;
      for (int threads : {1, 4}) {
        o.intra_query_threads = threads;
        auto rows = SortedRows(
            Executor(ExecMode::kFactorizedFused, o).Run(plan, view).table);
        EXPECT_EQ(rows, baseline)
            << "kernels=" << kernels << " threads=" << threads
            << " trial=" << trial;
      }
    }
  }
}

}  // namespace
}  // namespace ges
