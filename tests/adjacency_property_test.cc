// Property-based storage tests: random bulk graphs round-trip through the
// adjacency tables; incremental inserts/removes preserve invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/adjacency.h"
#include "storage/graph.h"

namespace ges {
namespace {

class AdjacencyRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AdjacencyRandomTest, BulkBuildMatchesEdgeList) {
  Rng rng(GetParam() * 2654435761u + 1);
  size_t n = 1 + rng.Uniform(200);
  size_t m = rng.Uniform(1000);
  AdjacencyTable table(RelationKey{0, 0, 0, Direction::kOut},
                       /*has_stamp=*/true);
  std::multimap<VertexId, std::pair<VertexId, int64_t>> expected;
  for (size_t e = 0; e < m; ++e) {
    VertexId src = rng.Uniform(n);
    VertexId dst = rng.Uniform(n);
    int64_t stamp = static_cast<int64_t>(rng.Uniform(1u << 20));
    table.StageEdge(src, dst, stamp);
    expected.emplace(src, std::make_pair(dst, stamp));
  }
  table.Finalize(n);
  EXPECT_EQ(table.num_edges(), m);

  // Every vertex's span reproduces its staged edges, sorted by neighbor id
  // (the sorted-adjacency invariant) with stamps stably reordered alongside.
  for (VertexId v = 0; v < n; ++v) {
    AdjSpan span = table.Neighbors(v);
    auto [lo, hi] = expected.equal_range(v);
    size_t count = static_cast<size_t>(std::distance(lo, hi));
    ASSERT_EQ(span.size, count) << "vertex " << v;
    // Staged pairs stably sorted by dst = what Finalize must produce.
    std::vector<std::pair<VertexId, int64_t>> want;
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::stable_sort(want.begin(), want.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(span.ids[i], want[i].first);
      EXPECT_EQ(span.stamps[i], want[i].second);
    }
    EXPECT_TRUE(span.sorted_clean());
  }
}

TEST_P(AdjacencyRandomTest, IncrementalInsertsAndRemoves) {
  Rng rng(GetParam() * 40503 + 7);
  AdjacencyTable table(RelationKey{0, 0, 0, Direction::kOut}, false);
  table.Finalize(8);
  std::multiset<VertexId> live;
  uint64_t inserted = 0;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.Bernoulli(0.7)) {
      VertexId dst = rng.Uniform(64);
      table.InsertEdge(3, dst);
      live.insert(dst);
      ++inserted;
    } else {
      VertexId dst = *live.begin();
      ASSERT_TRUE(table.RemoveEdge(3, dst));
      live.erase(live.begin());
    }
    ASSERT_EQ(table.Degree(3), live.size());
  }
  // The span contains exactly the live multiset (tombstones excluded).
  AdjSpan span = table.Neighbors(3);
  std::multiset<VertexId> seen;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] != kInvalidVertex) seen.insert(span.ids[i]);
  }
  EXPECT_EQ(seen, live);
  EXPECT_EQ(table.num_edges(), live.size());
  // The live subsequence stays sorted (InsertEdge compacts tombstones and
  // inserts at the sorted position) — galloping depends on this.
  VertexId prev = 0;
  bool first = true;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] == kInvalidVertex) continue;
    if (!first) EXPECT_LE(prev, span.ids[i]);
    prev = span.ids[i];
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjacencyRandomTest, ::testing::Range(0, 10));

// Random MV2PL write batches keep per-snapshot degree history consistent.
TEST(MvccPropertyTest, DegreeHistoryPerSnapshot) {
  Graph g;
  LabelId node = g.catalog().AddVertexLabel("N");
  LabelId e = g.catalog().AddEdgeLabel("E");
  g.catalog().AddProperty(node, "id", ValueType::kInt64);
  g.RegisterRelation(node, e, node);
  std::vector<VertexId> v;
  for (int i = 0; i < 10; ++i) v.push_back(g.AddVertexBulk(node, i));
  g.FinalizeBulk();
  RelationId rel = g.FindRelation(node, e, node, Direction::kOut);

  Rng rng(99);
  // history[k] = expected degree of v[0] at version k.
  std::vector<uint32_t> history{0};
  uint32_t degree = 0;
  for (int step = 0; step < 60; ++step) {
    bool remove = degree > 0 && rng.Bernoulli(0.3);
    if (remove) {
      // Pick an existing neighbor from the latest snapshot, then remove it.
      AdjSpan span = g.Neighbors(rel, v[0], g.CurrentVersion());
      VertexId target = kInvalidVertex;
      for (uint32_t i = 0; i < span.size; ++i) {
        if (span.ids[i] != kInvalidVertex) target = span.ids[i];
      }
      ASSERT_NE(target, kInvalidVertex);
      auto txn = g.BeginWrite({v[0], target});
      ASSERT_TRUE(txn->RemoveEdge(e, v[0], target).ok());
      txn->Commit();
      --degree;
    } else {
      VertexId other = v[1 + rng.Uniform(9)];
      auto txn = g.BeginWrite({v[0], other});
      ASSERT_TRUE(txn->AddEdge(e, v[0], other).ok());
      txn->Commit();
      ++degree;
    }
    history.push_back(degree);
  }
  // Every historical snapshot still answers with its own degree.
  for (Version ver = 0; ver < history.size(); ++ver) {
    EXPECT_EQ(g.Degree(rel, v[0], ver), history[ver]) << "version " << ver;
  }
}

}  // namespace
}  // namespace ges
