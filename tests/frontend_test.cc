// Frontend tests: the mini-Cypher parser and plan compiler, end-to-end
// against the tiny graph and the SNB graph.
#include "frontend/parser.h"

#include <gtest/gtest.h>

#include "executor/executor.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SortedRows;
using testutil::TinyGraph;

class FrontendTest : public ::testing::Test {
 protected:
  TinyGraph tiny_;

  std::vector<std::string> RunQuery(const std::string& q,
                                    ExecMode mode = ExecMode::kFactorizedFused) {
    Plan plan;
    Status s = CompileQuery(q, *tiny_.graph, &plan);
    EXPECT_TRUE(s.ok()) << s.message();
    if (!s.ok()) return {};
    GraphView view(tiny_.graph.get());
    return SortedRows(Executor(mode).Run(plan, view).table);
  }
};

TEST_F(FrontendTest, SeekAndReturn) {
  auto rows = RunQuery(
      "MATCH (p:PERSON) WHERE id(p) = 2 RETURN p.id");
  EXPECT_EQ(rows, (std::vector<std::string>{"2|"}));
}

TEST_F(FrontendTest, ScanWithFilter) {
  auto rows = RunQuery(
      "MATCH (m:MESSAGE) WHERE m.len > 125 RETURN m.id, m.len");
  EXPECT_EQ(rows, (std::vector<std::string>{"0|140|", "3|130|", "5|126|"}));
}

TEST_F(FrontendTest, SingleHopExpansion) {
  auto rows = RunQuery(
      "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = 0 RETURN f.id");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|", "2|"}));
}

TEST_F(FrontendTest, IncomingEdgeExpansion) {
  auto rows = RunQuery(
      "MATCH (p:PERSON)<-[:HAS_CREATOR]-(m:MESSAGE) WHERE id(p) = 3 "
      "RETURN m.id");
  EXPECT_EQ(rows, (std::vector<std::string>{"3|", "4|", "5|"}));
}

TEST_F(FrontendTest, PaperFigure8Query) {
  // The paper's running example, adapted to the tiny graph: 2-hop friends,
  // their messages longer than 125, top-2 by length.
  Plan plan;
  Status s = CompileQuery(
      "MATCH (p:PERSON)-[:KNOWS*1..2]->(f:PERSON)<-[:HAS_CREATOR]-(m:MESSAGE)"
      " WHERE id(p) = 0 AND m.len > 125"
      " RETURN f.id, m.id, m.len"
      " ORDER BY m.len DESC, f.id ASC LIMIT 2",
      *tiny_.graph, &plan);
  ASSERT_TRUE(s.ok()) << s.message();
  GraphView view(tiny_.graph.get());
  // Friends of p0 within 2 hops: p1, p2, p3. Messages > 125: m0(140, by
  // p1), m3(130, by p3), m5(126, by p3). Top-2 by len desc.
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kFactorized,
                        ExecMode::kFactorizedFused, ExecMode::kVolcano}) {
    QueryResult r = Executor(mode).Run(plan, view);
    ASSERT_EQ(r.table.NumRows(), 2u) << ExecModeName(mode);
    EXPECT_EQ(r.table.At(0, 2), Value::Int(140));
    EXPECT_EQ(r.table.At(1, 2), Value::Int(130));
  }
}

TEST_F(FrontendTest, CrossVariablePredicate) {
  auto rows = RunQuery(
      "MATCH (a:PERSON)-[:KNOWS]->(b:PERSON) WHERE a.id < b.id "
      "RETURN a.id, b.id");
  EXPECT_EQ(rows, (std::vector<std::string>{"0|1|", "0|2|", "1|3|", "2|3|"}));
}

TEST_F(FrontendTest, OrderByWithoutLimitAndBareVariable) {
  Plan plan;
  ASSERT_TRUE(CompileQuery(
                  "MATCH (m:MESSAGE) RETURN m.id ORDER BY m.len ASC",
                  *tiny_.graph, &plan)
                  .ok());
  GraphView view(tiny_.graph.get());
  QueryResult r = Executor(ExecMode::kFlat).Run(plan, view);
  ASSERT_EQ(r.table.NumRows(), 6u);
  EXPECT_EQ(r.table.At(0, 0), Value::Int(4));  // len 100 first
}

TEST_F(FrontendTest, LimitWithoutOrder) {
  auto rows = RunQuery("MATCH (m:MESSAGE) RETURN m.id LIMIT 3");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(FrontendTest, StringLiteralFilter) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  Plan plan;
  Status s = CompileQuery(
      "MATCH (p:PERSON) WHERE p.firstName = 'Jan' RETURN p.id LIMIT 5",
      fx.graph, &plan);
  ASSERT_TRUE(s.ok()) << s.message();
  GraphView view(&fx.graph);
  QueryResult r = Executor(ExecMode::kFactorizedFused).Run(plan, view);
  EXPECT_LE(r.table.NumRows(), 5u);
}

// --- error paths ---

TEST_F(FrontendTest, ErrorOnUnknownLabel) {
  Plan plan;
  Status s = CompileQuery("MATCH (x:NOPE) RETURN x", *tiny_.graph, &plan);
  EXPECT_FALSE(s.ok());
}

TEST_F(FrontendTest, ErrorOnUnknownEdgeType) {
  Plan plan;
  Status s = CompileQuery(
      "MATCH (a:PERSON)-[:NOPE]->(b:PERSON) RETURN b", *tiny_.graph, &plan);
  EXPECT_FALSE(s.ok());
}

TEST_F(FrontendTest, ErrorOnUnknownProperty) {
  Plan plan;
  Status s = CompileQuery("MATCH (p:PERSON) RETURN p.nope", *tiny_.graph,
                          &plan);
  EXPECT_FALSE(s.ok());
}

TEST_F(FrontendTest, ErrorOnMissingLabel) {
  Plan plan;
  Status s = CompileQuery("MATCH (p) RETURN p", *tiny_.graph, &plan);
  EXPECT_FALSE(s.ok());
}

TEST_F(FrontendTest, ErrorOnSyntax) {
  Plan plan;
  EXPECT_FALSE(CompileQuery("MATCH (p:PERSON", *tiny_.graph, &plan).ok());
  EXPECT_FALSE(CompileQuery("RETURN x", *tiny_.graph, &plan).ok());
  EXPECT_FALSE(
      CompileQuery("MATCH (p:PERSON) RETURN p.id LIMIT x", *tiny_.graph,
                   &plan)
          .ok());
  EXPECT_FALSE(CompileQuery("MATCH (p:PERSON) RETURN p.id garbage",
                            *tiny_.graph, &plan)
                   .ok());
}

TEST_F(FrontendTest, ErrorOnMismatchedDirection) {
  // MESSAGE-[:KNOWS]->MESSAGE is not a registered relation.
  Plan plan;
  Status s = CompileQuery(
      "MATCH (a:MESSAGE)-[:KNOWS]->(b:MESSAGE) RETURN b", *tiny_.graph,
      &plan);
  EXPECT_FALSE(s.ok());
}

// --- query normalization (the plan-cache key) ---------------------------

TEST_F(FrontendTest, NormalizeLiftsLiteralsToPlaceholders) {
  NormalizedQuery norm;
  ASSERT_TRUE(NormalizeQuery("match (p:PERSON) where id(p) = 2 and "
                             "p.id < 9 return p.id",
                             &norm)
                  .ok());
  EXPECT_FALSE(norm.explicit_params);
  EXPECT_EQ(norm.param_count, 2);
  ASSERT_EQ(norm.params.size(), 2u);
  EXPECT_EQ(norm.params[0].AsInt(), 2);
  EXPECT_EQ(norm.params[1].AsInt(), 9);
  EXPECT_NE(norm.text.find("$0"), std::string::npos) << norm.text;
  EXPECT_NE(norm.text.find("$1"), std::string::npos) << norm.text;
  // Keywords are canonicalized even though the input was lowercase.
  EXPECT_NE(norm.text.find("MATCH"), std::string::npos) << norm.text;
}

TEST_F(FrontendTest, NormalizationIsAFixedPoint) {
  // Normalizing already-normalized text must change nothing — the
  // property that makes the text usable as the plan-cache key.
  const char* kQueries[] = {
      "MATCH (p:PERSON) WHERE id(p) = 2 RETURN p.id",
      "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = 0 RETURN f.id",
      "MATCH (m:MESSAGE) WHERE m.len > 125 RETURN m.id, m.len "
      "ORDER BY m.len DESC LIMIT 3",
      "MATCH (p:PERSON) WHERE p.firstName = 'Jan' RETURN p.id LIMIT 5",
      "MATCH (p:PERSON) WHERE id(p) = $0 RETURN p.id",
  };
  for (const char* q : kQueries) {
    SCOPED_TRACE(q);
    NormalizedQuery once;
    ASSERT_TRUE(NormalizeQuery(q, &once).ok());
    NormalizedQuery twice;
    ASSERT_TRUE(NormalizeQuery(once.text, &twice).ok());
    EXPECT_EQ(once.text, twice.text);
    EXPECT_EQ(once.param_count, twice.param_count);
  }
}

TEST_F(FrontendTest, NormalizeSameShapeSameKey) {
  // Different literals, identical shape: one cache key, different params.
  NormalizedQuery a;
  NormalizedQuery b;
  ASSERT_TRUE(NormalizeQuery(
                  "MATCH (m:MESSAGE) WHERE m.len > 100 RETURN m.id", &a)
                  .ok());
  ASSERT_TRUE(NormalizeQuery(
                  "MATCH (m:MESSAGE) WHERE m.len > 200 RETURN m.id", &b)
                  .ok());
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.params[0].AsInt(), 100);
  EXPECT_EQ(b.params[0].AsInt(), 200);
}

TEST_F(FrontendTest, NormalizeKeepsLimitLiteral) {
  // LIMIT must stay a literal: the TopK fusion specializes on its value.
  NormalizedQuery norm;
  ASSERT_TRUE(NormalizeQuery(
                  "MATCH (m:MESSAGE) RETURN m.id ORDER BY m.len ASC LIMIT 3",
                  &norm)
                  .ok());
  EXPECT_NE(norm.text.find("LIMIT 3"), std::string::npos) << norm.text;
  EXPECT_EQ(norm.param_count, 0);
}

TEST_F(FrontendTest, NormalizeExplicitPlaceholdersMustBeDense) {
  NormalizedQuery norm;
  ASSERT_TRUE(NormalizeQuery("MATCH (p:PERSON) WHERE id(p) = $0 RETURN p.id",
                             &norm)
                  .ok());
  EXPECT_TRUE(norm.explicit_params);
  EXPECT_EQ(norm.param_count, 1);
  EXPECT_TRUE(norm.params.empty());
  // $1 without $0 is a hole in the index space: rejected.
  EXPECT_FALSE(
      NormalizeQuery("MATCH (p:PERSON) WHERE id(p) = $1 RETURN p.id", &norm)
          .ok());
}

TEST_F(FrontendTest, TemplateBindMatchesDirectCompile) {
  // Normalize -> CompileTemplate -> BindPlanParams must answer the same
  // rows as compiling the literal query directly.
  const char* kLiteral =
      "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = 0 RETURN f.id";
  NormalizedQuery norm;
  ASSERT_TRUE(NormalizeQuery(kLiteral, &norm).ok());
  Plan tmpl;
  ASSERT_TRUE(
      CompileTemplate(norm.text, *tiny_.graph, norm.params, &tmpl).ok());
  Plan bound;
  ASSERT_TRUE(BindPlanParams(tmpl, norm.params, &bound).ok());
  GraphView view(tiny_.graph.get());
  auto via_template =
      SortedRows(Executor(ExecMode::kFactorizedFused).Run(bound, view).table);
  EXPECT_EQ(via_template, RunQuery(kLiteral));

  // Out-of-range parameter vectors are rejected at bind time.
  Plan bad;
  EXPECT_FALSE(BindPlanParams(tmpl, {}, &bad).ok());
}

}  // namespace
}  // namespace ges
