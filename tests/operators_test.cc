// Operator-level tests on the paper's Figure 8 tiny graph: every plan
// operator exercised across all engine variants, plus edge cases.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "executor/optimizer.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SortedRows;
using testutil::TinyGraph;

class OperatorsTest : public ::testing::Test {
 protected:
  TinyGraph tiny_;

  std::vector<std::string> Run(ExecMode mode, const Plan& plan,
                               bool ordered = false) {
    Executor exec(mode);
    GraphView view(tiny_.graph.get());
    QueryResult r = exec.Run(plan, view);
    return ordered ? OrderedRows(r.table) : SortedRows(r.table);
  }

  void ExpectAllModes(const Plan& plan,
                      const std::vector<std::string>& expected,
                      bool ordered = false) {
    for (ExecMode mode :
         {ExecMode::kVolcano, ExecMode::kFlat, ExecMode::kFactorized,
          ExecMode::kFactorizedFused}) {
      EXPECT_EQ(Run(mode, plan, ordered), expected)
          << "mode=" << ExecModeName(mode);
    }
  }
};

TEST_F(OperatorsTest, NodeByIdSeekFindsVertex) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 2)
      .GetProperty("p", tiny_.id, ValueType::kInt64, "pid")
      .Output({"pid"});
  ExpectAllModes(b.Build(), {"2|"});
}

TEST_F(OperatorsTest, NodeByIdSeekMissingYieldsEmpty) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 999).Output({"p"});
  ExpectAllModes(b.Build(), {});
}

TEST_F(OperatorsTest, ScanByLabel) {
  PlanBuilder b("t");
  b.ScanByLabel("p", tiny_.person)
      .GetProperty("p", tiny_.id, ValueType::kInt64, "pid")
      .Output({"pid"});
  ExpectAllModes(b.Build(), {"0|", "1|", "2|", "3|"});
}

TEST_F(OperatorsTest, SingleHopExpand) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .Expand("p", "f", {tiny_.knows_out})
      .GetProperty("f", tiny_.id, ValueType::kInt64, "fid")
      .Output({"fid"});
  ExpectAllModes(b.Build(), {"1|", "2|"});
}

TEST_F(OperatorsTest, TwoHopExpandDistinctMinDistance) {
  // From p0: dist1 = {p1, p2}, dist2 = {p3}.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .ExpandEx("p", "f", {tiny_.knows_out}, 1, 2, true, true, "dist", "")
      .GetProperty("f", tiny_.id, ValueType::kInt64, "fid")
      .Output({"fid", "dist"});
  ExpectAllModes(b.Build(), {"1|1|", "2|1|", "3|2|"});
}

TEST_F(OperatorsTest, MinHopsTwoExcludesDirectFriends) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .Expand("p", "fof", {tiny_.knows_out}, 2, 2, true, true)
      .GetProperty("fof", tiny_.id, ValueType::kInt64, "fid")
      .Output({"fid"});
  ExpectAllModes(b.Build(), {"3|"});
}

TEST_F(OperatorsTest, ExpandWithStamp) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .ExpandEx("p", "f", {tiny_.knows_out}, 1, 1, false, false, "", "since")
      .GetProperty("f", tiny_.id, ValueType::kInt64, "fid")
      .Output({"fid", "since"});
  // know(0,1) stamp 101; know(0,2) stamp 102.
  ExpectAllModes(b.Build(), {"1|101|", "2|102|"});
}

TEST_F(OperatorsTest, ExpandTwoRelationsUnion) {
  // Messages of p3's friends == creators reached via two hops.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 1)
      .Expand("p", "msg", {tiny_.person_messages})
      .GetProperty("msg", tiny_.id, ValueType::kInt64, "mid")
      .Output({"mid"});
  ExpectAllModes(b.Build(), {"0|", "1|"});
}

TEST_F(OperatorsTest, ExpandFromVertexWithNoNeighborsDropsRow) {
  // p0 created no messages: expanding person->message yields nothing.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .Expand("p", "msg", {tiny_.person_messages})
      .Output({"msg"});
  ExpectAllModes(b.Build(), {});
}

TEST_F(OperatorsTest, FilterOnProperty) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(125))))
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Output({"mid", "len"});
  ExpectAllModes(b.Build(), {"0|140|", "3|130|", "5|126|"});
}

TEST_F(OperatorsTest, FilterCrossNodePredicateFlattens) {
  // Predicate touches columns in two different f-Tree nodes: friend id and
  // message len. The factorized engine must de-factor and still agree.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .Expand("p", "f", {tiny_.knows_out})
      .GetProperty("f", tiny_.id, ValueType::kInt64, "fid")
      .Expand("f", "m", {tiny_.person_messages})
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Filter(Expr::Lt(Expr::Mul(Expr::Col("fid"), Expr::Lit(Value::Int(100))),
                       Expr::Col("len")))
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Output({"fid", "mid"});
  // p0's friends: p1 (m0 len140, m1 len123), p2 (m2 len120).
  // fid*100 < len: p1: 100<140 yes, 100<123 yes; p2: 200<120 no.
  ExpectAllModes(b.Build(), {"1|0|", "1|1|"});
}

TEST_F(OperatorsTest, OrderByWithTies) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Project({}, {ComputedColumn{
                        Expr::Mul(Expr::Lit(Value::Int(0)), Expr::Col("len")),
                        "zero", ValueType::kInt64}})
      .OrderBy({{"zero", true}, {"mid", false}})
      .Output({"mid"});
  ExpectAllModes(b.Build(), {"5|", "4|", "3|", "2|", "1|", "0|"},
                 /*ordered=*/true);
}

TEST_F(OperatorsTest, OrderByLimitTopK) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .OrderBy({{"len", false}, {"mid", true}}, 3)
      .Output({"mid", "len"});
  ExpectAllModes(b.Build(), {"0|140|", "3|130|", "5|126|"}, /*ordered=*/true);
}

TEST_F(OperatorsTest, AggregateCountPerGroup) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .Expand("m", "creator", {tiny_.msg_creator})
      .GetProperty("creator", tiny_.id, ValueType::kInt64, "cid")
      .Aggregate({"cid"}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .OrderBy({{"cid", true}})
      .Output({"cid", "cnt"});
  ExpectAllModes(b.Build(), {"1|2|", "2|1|", "3|3|"}, /*ordered=*/true);
}

TEST_F(OperatorsTest, AggregateSumMinMaxAvgDistinct) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .Expand("m", "creator", {tiny_.msg_creator})
      .GetProperty("creator", tiny_.id, ValueType::kInt64, "cid")
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Aggregate({"cid"}, {AggSpec{AggSpec::kSum, "len", "sum"},
                           AggSpec{AggSpec::kMin, "len", "min"},
                           AggSpec{AggSpec::kMax, "len", "max"},
                           AggSpec{AggSpec::kAvg, "len", "avg"},
                           AggSpec{AggSpec::kCountDistinct, "len", "nd"}})
      .OrderBy({{"cid", true}})
      .Output({"cid", "sum", "min", "max", "nd"});
  // p1: m0(140), m1(123); p2: m2(120); p3: m3(130), m4(100), m5(126).
  ExpectAllModes(b.Build(),
                 {"1|263|123|140|2|", "2|120|120|120|1|",
                  "3|356|100|130|3|"},
                 /*ordered=*/true);
}

TEST_F(OperatorsTest, GlobalAggregateNoGroups) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "cnt"},
                      AggSpec{AggSpec::kSum, "len", "sum"}})
      .Output({"cnt", "sum"});
  ExpectAllModes(b.Build(), {"6|739|"});
}

TEST_F(OperatorsTest, GlobalAggregateOverEmptyInput) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 999)
      .Expand("p", "f", {tiny_.knows_out})
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "cnt"}})
      .Output({"cnt"});
  ExpectAllModes(b.Build(), {"0|"});
}

TEST_F(OperatorsTest, DistinctRemovesDuplicates) {
  // Two-hop non-distinct walk produces duplicate endpoints; Distinct
  // collapses them.
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 0)
      .Expand("p", "f", {tiny_.knows_out})
      .Expand("f", "ff", {tiny_.knows_out})
      .GetProperty("ff", tiny_.id, ValueType::kInt64, "ffid")
      .Project({{"ffid", "ffid"}})
      .Distinct()
      .Output({"ffid"});
  ExpectAllModes(b.Build(), {"0|", "3|"});
}

TEST_F(OperatorsTest, LimitTruncates) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message).Limit(4).Output({"m"});
  Plan plan = b.Build();
  for (ExecMode mode :
       {ExecMode::kVolcano, ExecMode::kFlat, ExecMode::kFactorized,
        ExecMode::kFactorizedFused}) {
    EXPECT_EQ(Run(mode, plan).size(), 4u) << ExecModeName(mode);
  }
}

TEST_F(OperatorsTest, ExpandIntoSemiJoin) {
  // Pairs (a, b) of persons within 2 hops where a directly knows b.
  PlanBuilder b("t");
  b.ScanByLabel("a", tiny_.person)
      .Expand("a", "b", {tiny_.knows_out}, 1, 2, true, true)
      .ExpandInto("a", "b", {tiny_.knows_out}, /*anti=*/false)
      .GetProperty("a", tiny_.id, ValueType::kInt64, "aid")
      .GetProperty("b", tiny_.id, ValueType::kInt64, "bid")
      .Output({"aid", "bid"});
  ExpectAllModes(b.Build(), {"0|1|", "0|2|", "1|0|", "1|3|", "2|0|", "2|3|",
                             "3|1|", "3|2|"});
}

TEST_F(OperatorsTest, ExpandIntoAntiJoin) {
  PlanBuilder b("t");
  b.ScanByLabel("a", tiny_.person)
      .Expand("a", "b", {tiny_.knows_out}, 1, 2, true, true)
      .ExpandInto("a", "b", {tiny_.knows_out}, /*anti=*/true)
      .GetProperty("a", tiny_.id, ValueType::kInt64, "aid")
      .GetProperty("b", tiny_.id, ValueType::kInt64, "bid")
      .Output({"aid", "bid"});
  // 2-hop-only pairs: (0,3), (1,2), (2,1), (3,0).
  ExpectAllModes(b.Build(), {"0|3|", "1|2|", "2|1|", "3|0|"});
}

TEST_F(OperatorsTest, ProjectComputedColumn) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Project({}, {ComputedColumn{
                        Expr::Add(Expr::Col("len"), Expr::Lit(Value::Int(1))),
                        "len1", ValueType::kInt64}})
      .Filter(Expr::Eq(Expr::Col("len1"), Expr::Lit(Value::Int(141))))
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Output({"mid", "len1"});
  ExpectAllModes(b.Build(), {"0|141|"});
}

TEST_F(OperatorsTest, ProjectSelectionsRenameAndPrune) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Project({{"mid", "renamed"}})
      .Output({"renamed"});
  ExpectAllModes(b.Build(), {"0|", "1|", "2|", "3|", "4|", "5|"});
}

TEST_F(OperatorsTest, PointerJoinOffMatchesOn) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 3)
      .Expand("p", "m", {tiny_.person_messages})
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Output({"len"});
  Plan plan = b.Build();
  GraphView view(tiny_.graph.get());
  ExecOptions with, without;
  without.pointer_join = false;
  QueryResult a = Executor(ExecMode::kFactorized, with).Run(plan, view);
  QueryResult c = Executor(ExecMode::kFactorized, without).Run(plan, view);
  EXPECT_EQ(SortedRows(a.table), SortedRows(c.table));
}

TEST_F(OperatorsTest, FusedExpandFilteredMatchesUnfused) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 3)
      .Expand("p", "m", {tiny_.person_messages})
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(110))))
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Output({"mid", "len"});
  ExpectAllModes(b.Build(), {"3|130|", "5|126|"});
}

TEST_F(OperatorsTest, EmptyGraphLabelScan) {
  Graph g;
  LabelId empty = g.catalog().AddVertexLabel("EMPTY");
  g.catalog().AddProperty(empty, "id", ValueType::kInt64);
  g.FinalizeBulk();
  PlanBuilder b("t");
  b.ScanByLabel("x", empty).Output({"x"});
  Plan plan = b.Build();
  GraphView view(&g);
  for (ExecMode mode :
       {ExecMode::kVolcano, ExecMode::kFlat, ExecMode::kFactorized,
        ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, view);
    EXPECT_EQ(r.table.NumRows(), 0u) << ExecModeName(mode);
  }
}

// Per-operator stats must be populated and peak accounting consistent.
TEST_F(OperatorsTest, StatsPopulated) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .OrderBy({{"len", true}})
      .Output({"len"});
  Plan plan = b.Build();
  GraphView view(tiny_.graph.get());
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kFactorized,
                        ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, view);
    ASSERT_EQ(r.stats.ops.size(), 3u) << ExecModeName(mode);
    EXPECT_GT(r.stats.peak_intermediate_bytes, 0u);
    for (const OpStats& os : r.stats.ops) {
      EXPECT_LE(os.intermediate_bytes, r.stats.peak_intermediate_bytes);
    }
  }
}

}  // namespace
}  // namespace ges
