// Worst-case-optimal intersection tier (DESIGN.md §12), end to end:
//
//  - planted-cycle datagen closed forms vs the analytics kernels
//    (merge-join oracle vs leapfrog intersection);
//  - differential censuses: binary Expand+ExpandInto plans vs hand-built
//    IntersectExpand plans vs the optimizer rewrite, across all four
//    ExecModes and intra-query thread counts {1, 2, 7};
//  - pinned MVCC snapshots stay byte-identical while concurrent write
//    transactions add/remove edges (tombstone + overlay galloping paths);
//  - the optimizer rewrite itself: orientation handling, deferred filters,
//    the cost gate and the ablation flag;
//  - intersection counters through EXPLAIN ANALYZE and ServiceStats, and
//    the BI wire kind end to end.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/algorithms.h"
#include "datagen/cyclic_generator.h"
#include "executor/executor.h"
#include "executor/explain.h"
#include "executor/optimizer.h"
#include "queries/ldbc.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using E = Expr;
using testutil::SnbFixture;
using testutil::SortedRows;

// One shared planted graph (default config: 16 communities of 8-cliques
// chained by bridges). All closed forms below are exact.
struct CyclicFixture {
  Graph graph;
  CyclicData data;

  CyclicFixture() { data = GenerateCyclic(CyclicConfig{}, &graph); }

  static CyclicFixture& Shared() {
    static CyclicFixture* f = new CyclicFixture();
    return *f;
  }
};

int64_t CountOf(const QueryResult& r) {
  if (r.table.NumRows() != 1) return -1;
  return r.table.rows()[0][0].AsInt();
}

Plan CountTail(PlanBuilder* b) {
  b->Aggregate({}, {AggSpec{AggSpec::kCount, "", "cnt"}}).Output({"cnt"});
  return b->Build();
}

// Ordered triangle census (6x per triangle), binary form: the shape the
// fused engine's WCOJ rule rewrites.
Plan TriangleBinary(const CyclicData& d) {
  PlanBuilder b("tri_binary");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .Expand("b", "t", {d.rel})
      .ExpandInto("t", "a", {d.rel}, /*anti=*/false);
  return CountTail(&b);
}

// The same census with an explicit IntersectExpand (runs in ALL engines,
// not just fused — the operator is part of the common Plan language).
Plan TriangleManual(const CyclicData& d) {
  PlanBuilder b("tri_manual");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .IntersectExpand("b", "t", {d.rel}, {"a"}, {{d.rel}});
  return CountTail(&b);
}

// Diamond census (4x per diamond; see bi_queries.cc for the multiplicity).
Plan DiamondBinary(const CyclicData& d) {
  PlanBuilder b("dia_binary");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .Expand("b", "c", {d.rel})
      .ExpandInto("c", "a", {d.rel}, /*anti=*/false)
      .Expand("b", "d", {d.rel})
      .ExpandInto("d", "a", {d.rel}, /*anti=*/false)
      .Filter(E::Ne(E::Col("c"), E::Col("d")));
  return CountTail(&b);
}

Plan DiamondManual(const CyclicData& d) {
  PlanBuilder b("dia_manual");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .IntersectExpand("b", "c", {d.rel}, {"a"}, {{d.rel}})
      .IntersectExpand("b", "d", {d.rel}, {"a"}, {{d.rel}})
      .Filter(E::Ne(E::Col("c"), E::Col("d")));
  return CountTail(&b);
}

// Quadrilateral census (8x per 4-cycle).
Plan FourCycleBinary(const CyclicData& d) {
  PlanBuilder b("quad_binary");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .Expand("b", "c", {d.rel})
      .Filter(E::Ne(E::Col("a"), E::Col("c")))
      .Expand("c", "d", {d.rel})
      .ExpandInto("d", "a", {d.rel}, /*anti=*/false)
      .Filter(E::Ne(E::Col("b"), E::Col("d")));
  return CountTail(&b);
}

// Ordered K4 census (24x per K4): the 2-probe intersection — candidate d
// must be adjacent to BOTH ancestors a and b.
Plan K4Binary(const CyclicData& d) {
  PlanBuilder b("k4_binary");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .Expand("b", "c", {d.rel})
      .ExpandInto("c", "a", {d.rel}, /*anti=*/false)
      .Expand("c", "d", {d.rel})
      .ExpandInto("d", "a", {d.rel}, /*anti=*/false)
      .ExpandInto("d", "b", {d.rel}, /*anti=*/false);
  return CountTail(&b);
}

Plan K4Manual(const CyclicData& d) {
  PlanBuilder b("k4_manual");
  b.ScanByLabel("a", d.node)
      .Expand("a", "b", {d.rel})
      .IntersectExpand("b", "c", {d.rel}, {"a"}, {{d.rel}})
      .IntersectExpand("c", "d", {d.rel}, {"a", "b"}, {{d.rel}, {d.rel}});
  return CountTail(&b);
}

// Runs `plan` under every ExecMode x thread-count combination plus the
// fused-engine WCOJ ablation, requiring the exact closed-form count.
void ExpectCountEverywhere(const Plan& plan, const GraphView& view,
                           int64_t want, const std::string& label) {
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kVolcano,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    for (int threads : {1, 2, 7}) {
      ExecOptions o;
      o.intra_query_threads = threads;
      QueryResult r = Executor(mode, o).Run(plan, view);
      EXPECT_EQ(CountOf(r), want)
          << label << " mode=" << ExecModeName(mode) << " threads=" << threads;
    }
  }
  ExecOptions no_wcoj;
  no_wcoj.intersect_expand = false;
  QueryResult r = Executor(ExecMode::kFactorizedFused, no_wcoj).Run(plan, view);
  EXPECT_EQ(CountOf(r), want) << label << " fused, rewrite ablated";
}

// --- datagen + analytics closed forms ----------------------------------

TEST(WcojDatagenTest, DefaultConfigClosedForms) {
  CyclicFixture& fx = CyclicFixture::Shared();
  // 16 * C(8,3) / 16 * C(8,2) * C(6,2) / 16 * 3 * C(8,4).
  EXPECT_EQ(fx.data.triangles, 896u);
  EXPECT_EQ(fx.data.diamonds, 6720u);
  EXPECT_EQ(fx.data.four_cycles, 3360u);
  EXPECT_EQ(fx.data.vertices.size(), 128u);
}

TEST(WcojDatagenTest, AnalyticsMatchClosedFormsAndOracle) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  uint64_t oracle = CountTriangles(view, fx.data.node, fx.data.rel);
  EXPECT_EQ(oracle, fx.data.triangles);

  IntersectOpStats tri_stats;
  EXPECT_EQ(CountTrianglesIntersect(view, fx.data.node, fx.data.rel,
                                    &tri_stats),
            fx.data.triangles);
  EXPECT_GT(tri_stats.probes, 0u);
  EXPECT_GT(tri_stats.emitted, 0u);

  IntersectOpStats dia_stats;
  EXPECT_EQ(CountDiamonds(view, fx.data.node, fx.data.rel, &dia_stats),
            fx.data.diamonds);
  EXPECT_GT(dia_stats.probes, 0u);

  EXPECT_EQ(CountFourCycles(view, fx.data.node, fx.data.rel),
            fx.data.four_cycles);
}

TEST(WcojDatagenTest, SmallConfigClosedForms) {
  Graph graph;
  CyclicConfig config;
  config.num_communities = 3;
  config.community_size = 5;
  config.seed = 91;
  CyclicData d = GenerateCyclic(config, &graph);
  EXPECT_EQ(d.triangles, 30u);    // 3 * C(5,3)
  EXPECT_EQ(d.diamonds, 90u);     // 3 * C(5,2) * C(3,2)
  EXPECT_EQ(d.four_cycles, 45u);  // 3 * 3 * C(5,4)
  GraphView view(&graph);
  EXPECT_EQ(CountTriangles(view, d.node, d.rel), d.triangles);
  EXPECT_EQ(CountTrianglesIntersect(view, d.node, d.rel), d.triangles);
  EXPECT_EQ(CountDiamonds(view, d.node, d.rel), d.diamonds);
  EXPECT_EQ(CountFourCycles(view, d.node, d.rel), d.four_cycles);
}

// Pendant chaff leaves lie on no cycle: the closed forms must not move,
// while the censuses still agree everywhere (the selective regime the
// benchmark measures is exercised here at test size).
TEST(WcojDatagenTest, ChaffLeavesPreserveClosedForms) {
  Graph graph;
  CyclicConfig config;
  config.num_communities = 3;
  config.community_size = 5;
  config.chaff_per_vertex = 7;
  config.seed = 92;
  CyclicData d = GenerateCyclic(config, &graph);
  EXPECT_EQ(d.triangles, 30u);  // identical to the chaff-free 3x5 config
  EXPECT_EQ(d.diamonds, 90u);
  EXPECT_EQ(d.four_cycles, 45u);
  GraphView view(&graph);
  EXPECT_EQ(CountTriangles(view, d.node, d.rel), d.triangles);
  EXPECT_EQ(CountTrianglesIntersect(view, d.node, d.rel), d.triangles);
  EXPECT_EQ(CountDiamonds(view, d.node, d.rel), d.diamonds);
  EXPECT_EQ(CountFourCycles(view, d.node, d.rel), d.four_cycles);
  int64_t want = static_cast<int64_t>(6 * d.triangles);
  ExpectCountEverywhere(TriangleBinary(d), view, want, "chaff_tri_binary");
  ExpectCountEverywhere(TriangleManual(d), view, want, "chaff_tri_manual");
}

// --- differential censuses across engines and thread counts -------------

TEST(WcojDifferentialTest, TriangleCensus) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  int64_t want = static_cast<int64_t>(6 * fx.data.triangles);
  ExpectCountEverywhere(TriangleBinary(fx.data), view, want, "tri_binary");
  ExpectCountEverywhere(TriangleManual(fx.data), view, want, "tri_manual");
}

TEST(WcojDifferentialTest, DiamondCensus) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  int64_t want = static_cast<int64_t>(4 * fx.data.diamonds);
  ExpectCountEverywhere(DiamondBinary(fx.data), view, want, "dia_binary");
  ExpectCountEverywhere(DiamondManual(fx.data), view, want, "dia_manual");
}

TEST(WcojDifferentialTest, FourCycleCensus) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  int64_t want = static_cast<int64_t>(8 * fx.data.four_cycles);
  ExpectCountEverywhere(FourCycleBinary(fx.data), view, want, "quad_binary");
}

TEST(WcojDifferentialTest, K4CensusTwoProbeIntersection) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  // 16 communities * C(8,4) K4s * 24 ordered tuples.
  int64_t want = 16 * 70 * 24;
  ExpectCountEverywhere(K4Binary(fx.data), view, want, "k4_binary");
  ExpectCountEverywhere(K4Manual(fx.data), view, want, "k4_manual");
}

TEST(WcojDifferentialTest, IntersectStatsCountEmissions) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  Plan plan = TriangleManual(fx.data);
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kVolcano,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, view);
    EXPECT_EQ(r.stats.intersect.emitted, 6 * fx.data.triangles)
        << ExecModeName(mode);
    EXPECT_GT(r.stats.intersect.probes, 0u) << ExecModeName(mode);
  }
  // Query-wide counters survive collect_stats=false (the service relies on
  // this to aggregate ServiceStats from throughput-mode runs).
  ExecOptions o;
  o.collect_stats = false;
  QueryResult r = Executor(ExecMode::kFactorizedFused, o).Run(plan, view);
  EXPECT_EQ(r.stats.intersect.emitted, 6 * fx.data.triangles);
}

// --- MVCC: pinned snapshots under concurrent updates --------------------

TEST(WcojSnapshotTest, PinnedSnapshotByteIdenticalUnderUpdates) {
  // Private graph: this test mutates it.
  Graph graph;
  CyclicData d = GenerateCyclic(CyclicConfig{}, &graph);
  const size_t s = d.config.community_size;

  SnapshotHandle pin = graph.PinSnapshot();
  GraphView pinned(&graph, pin.version());
  Plan plan = TriangleBinary(d);
  Plan manual = TriangleManual(d);

  int64_t before = static_cast<int64_t>(6 * d.triangles);
  std::vector<std::string> pinned_rows[4];
  int m = 0;
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kVolcano,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, pinned);
    EXPECT_EQ(CountOf(r), before) << ExecModeName(mode);
    pinned_rows[m++] = SortedRows(r.table);
  }

  // Close the bridge chain into a triangle: communities 0-1-2 are chained
  // c0[0]-c1[0], c1[0]-c2[0]; adding c0[0]-c2[0] creates exactly one new
  // triangle (bridge endpoints share no other neighbors).
  VertexId u = d.vertices[0];
  VertexId w = d.vertices[2 * s];
  {
    auto txn = graph.BeginWrite({u, w});
    ASSERT_TRUE(txn->AddEdge(d.link, u, w).ok());
    ASSERT_TRUE(txn->AddEdge(d.link, w, u).ok());
    ASSERT_NE(txn->Commit(), 0u);
  }
  // Remove one in-clique edge {v0, v1}: kills the s-2 triangles through
  // the other clique members (bridge neighbors are not shared).
  VertexId x = d.vertices[0];
  VertexId y = d.vertices[1];
  {
    auto txn = graph.BeginWrite({x, y});
    ASSERT_TRUE(txn->RemoveEdge(d.link, x, y).ok());
    ASSERT_TRUE(txn->RemoveEdge(d.link, y, x).ok());
    ASSERT_NE(txn->Commit(), 0u);
  }

  int64_t after = before + 6 * (1 - static_cast<int64_t>(s - 2));
  GraphView current(&graph);
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kVolcano,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    EXPECT_EQ(CountOf(Executor(mode).Run(plan, current)), after)
        << "current " << ExecModeName(mode);
    EXPECT_EQ(CountOf(Executor(mode).Run(manual, current)), after)
        << "current manual " << ExecModeName(mode);
  }
  // Analytics kernels see the same post-update graph (overlay + tombstone
  // galloping paths agree with the merge-join oracle).
  uint64_t now_tri = d.triangles + 1 - (s - 2);
  EXPECT_EQ(CountTriangles(current, d.node, d.rel), now_tri);
  EXPECT_EQ(CountTrianglesIntersect(current, d.node, d.rel), now_tri);

  // The pinned snapshot still answers byte-identically in every engine.
  m = 0;
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kVolcano,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, pinned);
    EXPECT_EQ(SortedRows(r.table), pinned_rows[m++])
        << "pinned " << ExecModeName(mode);
    QueryResult rm = Executor(mode).Run(manual, pinned);
    EXPECT_EQ(CountOf(rm), before) << "pinned manual " << ExecModeName(mode);
  }
  EXPECT_EQ(CountTrianglesIntersect(pinned, d.node, d.rel), d.triangles);
}

// --- the optimizer rewrite ----------------------------------------------

size_t CountOps(const Plan& p, OpType t) {
  size_t n = 0;
  for (const PlanOp& op : p.ops) n += op.type == t;
  return n;
}

TEST(WcojOptimizerTest, RewritesExpandIntoChain) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  Plan fused = OptimizePlan(K4Binary(fx.data), ExecOptions{}, &view);
  EXPECT_EQ(CountOps(fused, OpType::kIntersectExpand), 2u);
  EXPECT_EQ(CountOps(fused, OpType::kExpandInto), 0u);
  // The second fused op carries both probes.
  for (const PlanOp& op : fused.ops) {
    if (op.type == OpType::kIntersectExpand && op.out_column == "d") {
      EXPECT_EQ(op.probe_columns.size(), 2u);
    }
  }
}

TEST(WcojOptimizerTest, DefersInterleavedFilters) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  Plan fused = OptimizePlan(DiamondBinary(fx.data), ExecOptions{}, &view);
  EXPECT_EQ(CountOps(fused, OpType::kIntersectExpand), 2u);
  EXPECT_EQ(CountOps(fused, OpType::kExpandInto), 0u);
  // The Ne(c, d) filter survives, re-emitted after the intersection it was
  // interleaved with (selections commute).
  EXPECT_EQ(CountOps(fused, OpType::kFilter), 1u);
  bool filter_after_intersect = false;
  bool seen_intersect = false;
  for (const PlanOp& op : fused.ops) {
    if (op.type == OpType::kIntersectExpand) seen_intersect = true;
    if (op.type == OpType::kFilter) filter_after_intersect = seen_intersect;
  }
  EXPECT_TRUE(filter_after_intersect);
}

TEST(WcojOptimizerTest, ReverseOrientationNeedsCatalog) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  // ExpandInto("t", "a") checks the edge t->a, i.e. the REVERSE relation of
  // probe column a: without a view the matcher cannot resolve it and must
  // leave the binary plan intact.
  Plan plan = TriangleBinary(fx.data);
  Plan no_view = OptimizePlan(plan, ExecOptions{});
  EXPECT_EQ(CountOps(no_view, OpType::kIntersectExpand), 0u);
  EXPECT_EQ(CountOps(no_view, OpType::kExpandInto), 1u);
  Plan with_view = OptimizePlan(plan, ExecOptions{}, &view);
  EXPECT_EQ(CountOps(with_view, OpType::kIntersectExpand), 1u);

  // The forward orientation ExpandInto("a", "t") — membership of t in
  // N(a) as-is — fuses even without statistics.
  PlanBuilder b("tri_fwd");
  b.ScanByLabel("a", fx.data.node)
      .Expand("a", "b", {fx.data.rel})
      .Expand("b", "t", {fx.data.rel})
      .ExpandInto("a", "t", {fx.data.rel}, /*anti=*/false);
  Plan fwd = CountTail(&b);
  Plan fwd_no_view = OptimizePlan(fwd, ExecOptions{});
  EXPECT_EQ(CountOps(fwd_no_view, OpType::kIntersectExpand), 1u);
}

TEST(WcojOptimizerTest, AblationFlagKeepsBinaryPlan) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  ExecOptions off;
  off.intersect_expand = false;
  Plan plan = OptimizePlan(TriangleBinary(fx.data), off, &view);
  EXPECT_EQ(CountOps(plan, OpType::kIntersectExpand), 0u);
  EXPECT_EQ(CountOps(plan, OpType::kExpandInto), 1u);
}

TEST(WcojOptimizerTest, ZeroDegreeStatsUseDefaultCardinality) {
  // A relation with no sampled edges used to make both sides of the cost
  // model collapse to 0, silently disabling the rewrite. The gate now
  // substitutes kDefaultDegree, under which the intersection is strictly
  // cheaper (it is never asymptotically worse), so the rewrite applies —
  // same as the rule-based no-view path.
  Graph graph;
  Catalog& c = graph.catalog();
  LabelId node = c.AddVertexLabel("N");
  LabelId link = c.AddEdgeLabel("E");
  graph.RegisterRelation(node, link, node);
  graph.AddVertexBulk(node, 0);
  graph.FinalizeBulk();
  RelationId rel = graph.FindRelation(node, link, node, Direction::kOut);
  ASSERT_NE(rel, kInvalidRelation);
  GraphView view(&graph);

  PlanBuilder b("empty_rel");
  b.ScanByLabel("a", node)
      .Expand("a", "b", {rel})
      .ExpandInto("a", "b", {rel}, /*anti=*/false);
  Plan plan = CountTail(&b);
  Plan opt = OptimizePlan(plan, ExecOptions{}, &view);
  EXPECT_EQ(CountOps(opt, OpType::kIntersectExpand), 1u);
  EXPECT_EQ(CountOps(opt, OpType::kExpandInto), 0u);
}

// --- EXPLAIN ANALYZE ----------------------------------------------------

TEST(WcojExplainTest, AnalyzeRendersIntersectCounters) {
  CyclicFixture& fx = CyclicFixture::Shared();
  GraphView view(&fx.graph);
  Plan plan = TriangleManual(fx.data);
  QueryResult r = Executor(ExecMode::kFlat).Run(plan, view);
  std::string text = ExplainAnalyze(plan, r);
  EXPECT_NE(text.find("IntersectExpand"), std::string::npos) << text;
  EXPECT_NE(text.find("probes="), std::string::npos) << text;
  EXPECT_NE(text.find("gallops="), std::string::npos) << text;
  EXPECT_NE(text.find("emitted="), std::string::npos) << text;
}

// --- the BI wire kind + ServiceStats ------------------------------------

TEST(WcojServiceTest, BiQueriesOverTheWire) {
  SnbFixture& fx = SnbFixture::Shared();
  auto server =
      std::make_unique<service::Server>(&fx.graph, &fx.data,
                                        service::ServiceConfig{});
  std::string error;
  ASSERT_TRUE(server->Start(&error)) << error;
  service::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();

  LdbcContext ctx = LdbcContext::Resolve(fx.graph, fx.data.schema);
  GraphView view(&fx.graph, client.snapshot());
  Executor fused(ExecMode::kFactorizedFused);
  for (int k = 1; k <= 3; ++k) {
    service::QueryResponse resp;
    ASSERT_TRUE(client.RunBI(k, &resp)) << client.last_error();
    ASSERT_EQ(resp.status, service::WireStatus::kOk) << resp.message;
    QueryResult direct = fused.Run(BuildBI(k, ctx, LdbcParams{}), view);
    EXPECT_EQ(SortedRows(resp.table), SortedRows(direct.table)) << "BI" << k;
  }

  service::QueryResponse bad;
  ASSERT_TRUE(client.RunBI(9, &bad)) << client.last_error();
  EXPECT_EQ(bad.status, service::WireStatus::kInvalidArgument);

  // The fused BI runs push intersection counters into the service stats.
  const service::ServiceStats& st = server->stats();
  EXPECT_GT(st.intersect_probes.load(), 0u);
  EXPECT_NE(st.ToString().find("intersect:"), std::string::npos);

  client.Close();
  server->Drain();
}

}  // namespace
}  // namespace ges
