// Unit tests for the common runtime: Value, ValueVector, Arena, Rng, Zipf.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/arena.h"
#include "common/random.h"
#include "common/value.h"

namespace ges {
namespace {

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Date(123456).AsInt(), 123456);
  EXPECT_EQ(Value::Vertex(42).AsVertex(), 42u);
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Double(1.5), Value::Double(1.6));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_GT(Value::Double(3.5).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // Non-numeric cross-type comparisons order by type tag, never crash.
  Value a = Value::String("x");
  Value b = Value::Int(5);
  EXPECT_NE(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
}

TEST(ValueTest, HashEqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Vertex(3).ToString(), "v3");
}

TEST(ValueVectorTest, IntColumn) {
  ValueVector v(ValueType::kInt64);
  for (int i = 0; i < 100; ++i) v.AppendInt(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.GetInt(7), 7);
  EXPECT_EQ(v.GetValue(7), Value::Int(7));
  v.SetInt(7, -1);
  EXPECT_EQ(v.GetInt(7), -1);
}

TEST(ValueVectorTest, StringColumn) {
  ValueVector v(ValueType::kString);
  v.AppendString("a");
  v.AppendString("b");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.GetString(1), "b");
  EXPECT_EQ(v.GetValue(0), Value::String("a"));
}

TEST(ValueVectorTest, AppendRangePreservesValues) {
  ValueVector a(ValueType::kInt64);
  for (int i = 0; i < 10; ++i) a.AppendInt(i);
  ValueVector b(ValueType::kInt64);
  b.AppendRange(a, 3, 7);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.GetInt(0), 3);
  EXPECT_EQ(b.GetInt(3), 6);
}

TEST(ValueVectorTest, AppendValueDispatchesByColumnType) {
  ValueVector v(ValueType::kDouble);
  v.AppendValue(Value::Int(2));  // numeric coercion into a double column
  EXPECT_DOUBLE_EQ(v.GetDouble(0), 2.0);
}

TEST(ValueVectorTest, MemoryBytesGrowsWithContent) {
  ValueVector v(ValueType::kInt64);
  size_t empty = v.MemoryBytes();
  for (int i = 0; i < 1000; ++i) v.AppendInt(i);
  EXPECT_GT(v.MemoryBytes(), empty + 1000 * sizeof(int64_t) - 1);
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(96, 16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_GE(arena.bytes_allocated(), 100u * 96);
}

TEST(ArenaTest, LargeAllocationGetsOwnSlab) {
  Arena arena(64);
  void* p = arena.Allocate(10000);
  ASSERT_NE(p, nullptr);
  // Writable across the whole range.
  memset(p, 0xab, 10000);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena(1024);
  arena.Allocate(100);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(ConcurrentArenaTest, ParallelAllocationsDisjoint) {
  ConcurrentArena arena;
  std::vector<std::thread> threads;
  std::vector<std::vector<void*>> ptrs(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arena, &ptrs, t] {
      for (int i = 0; i < 1000; ++i) {
        ptrs[t].push_back(arena.Allocate(24));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<void*> all;
  for (const auto& v : ptrs) {
    for (void* p : v) EXPECT_TRUE(all.insert(p).second);
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(3);
  ZipfSampler zipf(100, 0.9);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t s = zipf.Sample(rng);
    EXPECT_LT(s, 100u);
    if (s < 10) ++low;
    if (s >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

}  // namespace
}  // namespace ges
