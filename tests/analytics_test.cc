// Analytics (OLAP) kernel tests on graphs with known answers.
#include "analytics/algorithms.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::TinyGraph;

// A dedicated graph for analytics: persons 0..5, symmetric FRIENDS edges
// forming a triangle {0,1,2}, an edge 3-4 and an isolated 5.
struct AnalyticsGraph {
  Graph graph;
  LabelId person;
  LabelId friends;
  RelationId out, in;
  std::vector<VertexId> v;

  AnalyticsGraph() {
    Catalog& c = graph.catalog();
    person = c.AddVertexLabel("PERSON");
    friends = c.AddEdgeLabel("FRIENDS");
    c.AddProperty(person, "id", ValueType::kInt64);
    graph.RegisterRelation(person, friends, person);
    for (int i = 0; i < 6; ++i) {
      v.push_back(graph.AddVertexBulk(person, i));
    }
    auto add = [&](int a, int b) {
      graph.AddEdgeBulk(friends, v[a], v[b]);
      graph.AddEdgeBulk(friends, v[b], v[a]);
    };
    add(0, 1);
    add(1, 2);
    add(0, 2);
    add(3, 4);
    graph.FinalizeBulk();
    out = graph.FindRelation(person, friends, person, Direction::kOut);
    in = graph.FindRelation(person, friends, person, Direction::kIn);
  }
};

TEST(WccTest, FindsThreeComponents) {
  AnalyticsGraph g;
  GraphView view(&g.graph);
  WccResult wcc = WeaklyConnectedComponents(view, g.person, {g.out});
  EXPECT_EQ(wcc.num_components, 3u);
  ASSERT_EQ(wcc.component.size(), 6u);
  // {0,1,2} share a component labeled with the smallest vertex id.
  EXPECT_EQ(wcc.component[0], wcc.component[1]);
  EXPECT_EQ(wcc.component[1], wcc.component[2]);
  EXPECT_EQ(wcc.component[0], g.v[0]);
  EXPECT_EQ(wcc.component[3], wcc.component[4]);
  EXPECT_EQ(wcc.component[3], g.v[3]);
  EXPECT_EQ(wcc.component[5], g.v[5]);
  EXPECT_NE(wcc.component[0], wcc.component[3]);
}

TEST(TriangleTest, CountsTheTriangleOnce) {
  AnalyticsGraph g;
  GraphView view(&g.graph);
  EXPECT_EQ(CountTriangles(view, g.person, g.out), 1u);
}

TEST(PageRankTest, SumsToOneAndRanksHubs) {
  AnalyticsGraph g;
  GraphView view(&g.graph);
  PageRankResult pr = PageRank(view, g.person, {g.out}, 30);
  double sum = 0;
  for (double s : pr.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Triangle members have equal rank by symmetry; the isolated vertex has
  // the lowest rank.
  EXPECT_NEAR(pr.scores[0], pr.scores[1], 1e-9);
  EXPECT_NEAR(pr.scores[1], pr.scores[2], 1e-9);
  EXPECT_LT(pr.scores[5], pr.scores[0]);
  EXPECT_NEAR(pr.scores[3], pr.scores[4], 1e-9);
}

TEST(PageRankTest, EmptyLabel) {
  Graph graph;
  LabelId empty = graph.catalog().AddVertexLabel("EMPTY");
  graph.FinalizeBulk();
  GraphView view(&graph);
  PageRankResult pr = PageRank(view, empty, {});
  EXPECT_TRUE(pr.vertices.empty());
}

TEST(BfsDistancesTest, DistancesAndDepthBound) {
  // Path 0-1-2 plus 3-4: distances from 0.
  AnalyticsGraph g;
  GraphView view(&g.graph);
  auto dist = BfsDistances(view, {g.out}, g.v[0]);
  EXPECT_EQ(dist[g.v[0]], 0);
  EXPECT_EQ(dist[g.v[1]], 1);
  EXPECT_EQ(dist[g.v[2]], 1);
  EXPECT_EQ(dist.count(g.v[3]), 0u);
  EXPECT_EQ(dist.count(g.v[5]), 0u);

  auto bounded = BfsDistances(view, {g.out}, g.v[0], 0);
  EXPECT_EQ(bounded.size(), 1u);
}

TEST(DegreeHistogramTest, CountsDegrees) {
  AnalyticsGraph g;
  GraphView view(&g.graph);
  std::vector<uint64_t> h = DegreeHistogram(view, g.person, g.out);
  // Degrees: v0,v1,v2 = 2; v3,v4 = 1; v5 = 0.
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 3u);
}

TEST(AnalyticsSnbTest, KernelsRunOnSnbGraph) {
  testutil::SnbFixture& fx = testutil::SnbFixture::Shared();
  const SnbSchema& s = fx.data.schema;
  GraphView view(&fx.graph);
  RelationId knows =
      fx.graph.FindRelation(s.person, s.knows, s.person, Direction::kOut);

  PageRankResult pr = PageRank(view, s.person, {knows}, 10);
  double sum = 0;
  for (double x : pr.scores) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);

  WccResult wcc = WeaklyConnectedComponents(view, s.person, {knows});
  EXPECT_GE(wcc.num_components, 1u);
  EXPECT_LE(wcc.num_components, fx.data.persons.size());

  uint64_t triangles = CountTriangles(view, s.person, knows);
  // A skewed social graph with local clustering should close triangles.
  EXPECT_GT(triangles, 0u);
}

TEST(AnalyticsSnapshotTest, RespectsMvccSnapshots) {
  AnalyticsGraph g;
  Version before = g.graph.CurrentVersion();
  {
    auto txn = g.graph.BeginWrite({g.v[2], g.v[3]});
    ASSERT_TRUE(txn->AddEdge(g.friends, g.v[2], g.v[3]).ok());
    ASSERT_TRUE(txn->AddEdge(g.friends, g.v[3], g.v[2]).ok());
    txn->Commit();
  }
  GraphView old_view(&g.graph, before);
  GraphView new_view(&g.graph);
  EXPECT_EQ(WeaklyConnectedComponents(old_view, g.person, {g.out})
                .num_components,
            3u);
  EXPECT_EQ(WeaklyConnectedComponents(new_view, g.person, {g.out})
                .num_components,
            2u);
}

}  // namespace
}  // namespace ges
