// End-to-end durability through the service layer: a durable server
// applies IU updates over the wire, checkpoints on the admin command,
// recovers across a restart (Graph::Open + RebuildSnbData), and degrades
// to read-only over the wire after an injected WAL I/O failure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "datagen/snb_generator.h"
#include "queries/ldbc.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "storage/fault_fs.h"
#include "storage/graph.h"

namespace ges {
namespace {

using service::Client;
using service::QueryResponse;
using service::Server;
using service::ServiceConfig;
using service::WireStatus;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/ges_dursvc_test_XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

DurabilityOptions TestOpts(FileSystem* fs = nullptr) {
  DurabilityOptions opts;
  opts.wal.fsync_policy = FsyncPolicy::kAlways;
  opts.fs = fs;
  return opts;
}

SnbData SmallSnb(Graph* g) {
  SnbConfig snb;
  snb.scale_factor = 0.01;
  return GenerateSnb(snb, g);
}

TEST(DurableServiceTest, UpdatesSurviveServerRestart) {
  TempDir dir;
  size_t vertices_before_restart = 0;
  uint64_t version_before_restart = 0;

  {
    auto graph = std::make_unique<Graph>();
    SnbData data = SmallSnb(graph.get());
    ASSERT_TRUE(graph->EnableDurability(dir.path(), TestOpts()).ok());

    Server server(graph.get(), &data, ServiceConfig{});
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

    // One update, then an admin checkpoint, then one more update that
    // lives only in the WAL: restart exercises snapshot load AND replay.
    QueryResponse resp;
    ASSERT_TRUE(client.RunIU(1, /*seed=*/7, &resp)) << client.last_error();
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
    std::string detail;
    EXPECT_TRUE(client.Checkpoint(&detail)) << detail;
    ASSERT_TRUE(client.RunIU(2, /*seed=*/8, &resp)) << client.last_error();
    ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;

    vertices_before_restart = graph->NumVerticesTotal();
    version_before_restart = graph->CurrentVersion();
    client.Close();
    server.Drain(2.0);
    // No final checkpoint here (an unclean-ish stop): the post-checkpoint
    // update must come back via WAL replay.
  }

  // "Restart": recover the directory and serve from the recovered graph.
  std::unique_ptr<Graph> graph;
  RecoveryInfo info;
  Status st = Graph::Open(dir.path(), TestOpts(), &graph, &info);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(info.replayed_txns, 1u);  // the post-checkpoint IU2
  EXPECT_EQ(graph->NumVerticesTotal(), vertices_before_restart);
  EXPECT_EQ(graph->CurrentVersion(), version_before_restart);

  SnbData data = RebuildSnbData(graph.get());
  EXPECT_FALSE(data.persons.empty());
  Server server(graph.get(), &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // The recovered server answers reads and accepts further updates.
  ParamGen gen(graph.get(), &data, /*seed=*/1);
  QueryResponse resp;
  ASSERT_TRUE(client.RunIS(1, gen.Next(), &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  ASSERT_TRUE(client.RunIU(1, /*seed=*/99, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
  client.Close();
  server.Drain(2.0);
}

TEST(DurableServiceTest, CheckpointRefusedOnNonDurableServer) {
  Graph graph;
  SnbData data = SmallSnb(&graph);
  Server server(&graph, &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  std::string detail;
  EXPECT_FALSE(client.Checkpoint(&detail));
  EXPECT_NE(detail.find("not durable"), std::string::npos) << detail;
  // Clean refusal, not a connection failure: the session stays usable.
  EXPECT_TRUE(client.Ping());
  client.Close();
  server.Drain(2.0);
}

TEST(DurableServiceTest, WalFailureDegradesToReadOnlyOverWire) {
  TempDir dir;
  FaultFS fault_fs;
  auto graph = std::make_unique<Graph>();
  SnbData data = SmallSnb(graph.get());
  ASSERT_TRUE(
      graph->EnableDurability(dir.path(), TestOpts(&fault_fs)).ok());

  Server server(graph.get(), &data, ServiceConfig{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  // The next file operation (the IU's WAL append) fails: the commit must
  // fail, latch the graph read-only, and surface READ_ONLY on the wire.
  fault_fs.Arm(1, FaultFS::FaultKind::kFail);
  QueryResponse resp;
  ASSERT_TRUE(client.RunIU(1, /*seed=*/1, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kReadOnly) << resp.message;
  EXPECT_NE(resp.message.find("read-only"), std::string::npos)
      << resp.message;

  // Further updates fail fast on the pre-check; reads keep working.
  ASSERT_TRUE(client.RunIU(2, /*seed=*/2, &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kReadOnly);
  ParamGen gen(graph.get(), &data, /*seed=*/1);
  ASSERT_TRUE(client.RunIS(1, gen.Next(), &resp)) << client.last_error();
  EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;

  // Checkpoints are refused while read-only (they could not truncate the
  // WAL safely).
  std::string detail;
  EXPECT_FALSE(client.Checkpoint(&detail));
  client.Close();
  server.Drain(2.0);
}

TEST(DurableServiceTest, RebuildSnbDataMatchesGeneratedPools) {
  TempDir dir;
  Graph original;
  SnbData generated = SmallSnb(&original);
  ASSERT_TRUE(original.EnableDurability(dir.path(), TestOpts()).ok());

  std::unique_ptr<Graph> reopened;
  ASSERT_TRUE(Graph::Open(dir.path(), TestOpts(), &reopened).ok());
  SnbData rebuilt = RebuildSnbData(reopened.get());

  EXPECT_EQ(rebuilt.persons.size(), generated.persons.size());
  EXPECT_EQ(rebuilt.posts.size(), generated.posts.size());
  EXPECT_EQ(rebuilt.comments.size(), generated.comments.size());
  EXPECT_EQ(rebuilt.forums.size(), generated.forums.size());
  EXPECT_EQ(rebuilt.tags.size(), generated.tags.size());
  EXPECT_EQ(rebuilt.tagclasses.size(), generated.tagclasses.size());
  EXPECT_EQ(rebuilt.places.size(), generated.places.size());
  EXPECT_EQ(rebuilt.organisations.size(), generated.organisations.size());
  EXPECT_EQ(rebuilt.num_cities, generated.num_cities);
  EXPECT_EQ(rebuilt.num_countries, generated.num_countries);
  EXPECT_EQ(rebuilt.num_universities, generated.num_universities);
  EXPECT_EQ(rebuilt.next_person_ext, generated.next_person_ext);
  EXPECT_EQ(rebuilt.next_post_ext, generated.next_post_ext);
  EXPECT_EQ(rebuilt.next_comment_ext, generated.next_comment_ext);
  EXPECT_EQ(rebuilt.next_forum_ext, generated.next_forum_ext);
}

}  // namespace
}  // namespace ges
