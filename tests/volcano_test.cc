// Volcano-engine-specific tests: iterator state machines, blocking
// operators, and pipeline composition (beyond the cross-engine equivalence
// suite).
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::OrderedRows;
using testutil::SortedRows;
using testutil::TinyGraph;

class VolcanoTest : public ::testing::Test {
 protected:
  TinyGraph tiny_;

  QueryResult Run(const Plan& plan) {
    GraphView view(tiny_.graph.get());
    return Executor(ExecMode::kVolcano).Run(plan, view);
  }
};

TEST_F(VolcanoTest, SeekEmitsExactlyOnce) {
  PlanBuilder b("t");
  b.NodeByIdSeek("p", tiny_.person, 1).Output({"p"});
  QueryResult r = Run(b.Build());
  EXPECT_EQ(r.table.NumRows(), 1u);
}

TEST_F(VolcanoTest, ExpandResumesAcrossInputRows) {
  // Each person expands to a different number of messages; the iterator
  // must drain one source's buffer before pulling the next.
  PlanBuilder b("t");
  b.ScanByLabel("p", tiny_.person)
      .Expand("p", "m", {tiny_.person_messages})
      .GetProperty("p", tiny_.id, ValueType::kInt64, "pid")
      .GetProperty("m", tiny_.id, ValueType::kInt64, "mid")
      .Output({"pid", "mid"});
  QueryResult r = Run(b.Build());
  // p1 -> m0, m1; p2 -> m2; p3 -> m3, m4, m5 (p0 creates nothing).
  EXPECT_EQ(SortedRows(r.table),
            (std::vector<std::string>{"1|0|", "1|1|", "2|2|", "3|3|", "3|4|",
                                      "3|5|"}));
}

TEST_F(VolcanoTest, BlockingOrderByDrainsThenStreams) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .OrderBy({{"len", true}})
      .Limit(3)
      .Output({"len"});
  QueryResult r = Run(b.Build());
  EXPECT_EQ(OrderedRows(r.table),
            (std::vector<std::string>{"100|", "120|", "123|"}));
}

TEST_F(VolcanoTest, LimitShortCircuitsUpstream) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message).Limit(1).Output({"m"});
  QueryResult r = Run(b.Build());
  EXPECT_EQ(r.table.NumRows(), 1u);
}

TEST_F(VolcanoTest, DistinctAcrossStreamedTuples) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .Expand("m", "c", {tiny_.msg_creator})
      .GetProperty("c", tiny_.id, ValueType::kInt64, "cid")
      .Project({{"cid", "cid"}})
      .Distinct()
      .Output({"cid"});
  QueryResult r = Run(b.Build());
  EXPECT_EQ(SortedRows(r.table),
            (std::vector<std::string>{"1|", "2|", "3|"}));
}

TEST_F(VolcanoTest, PeakMemoryTracksBlockingBuffers) {
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .OrderBy({{"len", true}})
      .Output({"len"});
  QueryResult r = Run(b.Build());
  EXPECT_GT(r.stats.peak_intermediate_bytes, 0u);
}

TEST_F(VolcanoTest, EmptyPipelineStagesCompose) {
  // A filter that rejects everything, feeding a blocking aggregate.
  PlanBuilder b("t");
  b.ScanByLabel("m", tiny_.message)
      .GetProperty("m", tiny_.len, ValueType::kInt64, "len")
      .Filter(Expr::Gt(Expr::Col("len"), Expr::Lit(Value::Int(10000))))
      .Aggregate({}, {AggSpec{AggSpec::kCount, "", "n"}})
      .Output({"n"});
  QueryResult r = Run(b.Build());
  ASSERT_EQ(r.table.NumRows(), 1u);
  EXPECT_EQ(r.table.At(0, 0), Value::Int(0));
}

TEST_F(VolcanoTest, ProcedureSourceStreams) {
  PlanBuilder b("t");
  b.Procedure([](const GraphView&) {
    Schema s;
    s.Add("x", ValueType::kInt64);
    FlatBlock out(s);
    for (int i = 0; i < 5; ++i) out.AppendRow({Value::Int(i)});
    return out;
  });
  b.Output({"x"});
  QueryResult r = Run(b.Build());
  EXPECT_EQ(r.table.NumRows(), 5u);
}

}  // namespace
}  // namespace ges
