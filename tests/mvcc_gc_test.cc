// MVCC version-chain garbage collection (DESIGN.md §11): the snapshot
// registry / watermark protocol, Prune correctness under pinned readers,
// overlay memory accounting, PropOverlay write coalescing, and the
// service-level GC driver (reaper cadence, session pins, stall export).
//
// The concurrency tests here are the TSan target for GC: a reader pinned
// at snapshot S must see byte-identical results before, during and after
// concurrent prune storms, in every ExecMode.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "executor/executor.h"
#include "service/client.h"
#include "service/server.h"
#include "storage/graph.h"
#include "tests/test_util.h"

namespace ges {
namespace {

using testutil::SortedRows;
using testutil::TinyGraph;

// Commits one transaction bumping messages[idx].len to `value`.
Version CommitLen(TinyGraph* tiny, int idx, int64_t value) {
  auto txn = tiny->graph->BeginWrite({tiny->messages[idx]});
  txn->SetProperty(tiny->messages[idx], tiny->len, Value::Int(value));
  return txn->Commit();
}

// Commits one knows edge persons[a] -> persons[b].
Version CommitKnows(TinyGraph* tiny, int a, int b, int64_t stamp) {
  auto txn = tiny->graph->BeginWrite({tiny->persons[a], tiny->persons[b]});
  EXPECT_TRUE(
      txn->AddEdge(tiny->knows, tiny->persons[a], tiny->persons[b], stamp)
          .ok());
  return txn->Commit();
}

TEST(SnapshotRegistryTest, WatermarkFollowsOldestPin) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  // No pins: the watermark is the current version.
  EXPECT_EQ(g.OldestActiveSnapshot(), g.CurrentVersion());
  EXPECT_EQ(g.ActiveSnapshots(), 0u);

  SnapshotHandle a = g.PinSnapshot();
  Version va = a.version();
  EXPECT_EQ(va, g.CurrentVersion());
  EXPECT_EQ(g.ActiveSnapshots(), 1u);

  CommitLen(&tiny, 0, 1);
  CommitLen(&tiny, 0, 2);
  // The pin holds the watermark even as commits advance the version.
  EXPECT_GT(g.CurrentVersion(), va);
  EXPECT_EQ(g.OldestActiveSnapshot(), va);

  SnapshotHandle b = g.PinSnapshot();
  EXPECT_EQ(g.ActiveSnapshots(), 2u);
  EXPECT_EQ(g.OldestActiveSnapshot(), va) << "oldest pin wins";

  a.Release();
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(g.OldestActiveSnapshot(), b.version());

  // Moves transfer the registration instead of double-releasing it.
  SnapshotHandle c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(g.ActiveSnapshots(), 1u);
  c.Release();
  EXPECT_EQ(g.ActiveSnapshots(), 0u);
  EXPECT_EQ(g.OldestActiveSnapshot(), g.CurrentVersion());
}

TEST(MvccGcTest, PruneKeepsEverythingAPinnedReaderCanSee) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  CommitLen(&tiny, 0, 500);
  CommitKnows(&tiny, 0, 3, 7);
  SnapshotHandle pin = g.PinSnapshot();
  Version s = pin.version();
  int64_t len_at_s = g.GetProperty(tiny.messages[0], tiny.len, s).AsInt();
  uint32_t deg_at_s = g.Degree(tiny.knows_out, tiny.persons[0], s);

  // Pile more versions on the same chains.
  for (int i = 0; i < 32; ++i) {
    CommitLen(&tiny, 0, 1000 + i);
    CommitKnows(&tiny, 0, 1, 1000 + i);
  }
  Version head = g.CurrentVersion();

  GcStats gc = g.PruneVersions();
  EXPECT_EQ(gc.watermark, s) << "pin must hold the watermark";
  EXPECT_EQ(gc.entries_pruned, 0u)
      << "every entry is above the floor at s or is the floor itself... "
         "except entries strictly older than the newest <= s";
  // (The chains had exactly one entry <= s per vertex, which is the floor;
  // nothing below it existed for knows, but len had the bulk base + v1 —
  // allow either zero or the superseded pre-s entries.)

  // The pinned reader's view is unchanged by the prune.
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, s).AsInt(), len_at_s);
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], s), deg_at_s);
  // And the head keeps all post-s history.
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, head).AsInt(), 1031);
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], head), deg_at_s + 32);

  // Release the pin: the next prune collapses each chain to its head.
  pin.Release();
  gc = g.PruneVersions();
  EXPECT_EQ(gc.watermark, head);
  EXPECT_GT(gc.entries_pruned, 0u);
  EXPECT_GT(gc.bytes_reclaimed, 0u);
  EXPECT_EQ(g.versions_pruned_total(), gc.entries_pruned);
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, head).AsInt(), 1031);
  EXPECT_EQ(g.Degree(tiny.knows_out, tiny.persons[0], head), deg_at_s + 32);
  // Old snapshots below the watermark are gone — but nobody holds them.
}

// Satellite 1: Graph::MemoryBytes must account overlay chains and the
// new-vertex registry, and shrink when GC reclaims them.
TEST(MvccGcTest, MemoryBytesTracksOverlayGrowthAndPrune) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  size_t base_total = g.MemoryBytes();
  EXPECT_EQ(g.OverlayBytes(), 0u);

  for (int i = 0; i < 256; ++i) CommitLen(&tiny, i % 6, i);
  size_t grown_overlay = g.OverlayBytes();
  EXPECT_GT(grown_overlay, 0u);
  EXPECT_GE(g.MemoryBytes(), base_total + grown_overlay)
      << "MemoryBytes must include overlay chain bytes";

  // A post-load vertex lands in the registry and is accounted too.
  {
    auto txn = g.BeginWrite({tiny.persons[0]});
    VertexId nv = txn->CreateVertex(tiny.person, 100, {});
    ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], nv, 1).ok());
    txn->Commit();
  }
  EXPECT_GT(g.OverlayBytes(), grown_overlay);

  GcStats gc = g.PruneVersions();
  EXPECT_GT(gc.entries_pruned, 0u);
  size_t after = g.OverlayBytes();
  EXPECT_LT(after, grown_overlay / 4)
      << "collapsing 256-entry chains must reclaim the bulk of the bytes";
  // The gauge matches what Prune said it freed, entry for entry.
  EXPECT_EQ(g.gc_bytes_reclaimed_total(), gc.bytes_reclaimed);
}

// Satellite 3: PropOverlay::Publish coalesces a transaction's writes into
// sorted last-write-wins form; Find binary-searches them.
TEST(MvccGcTest, PropOverlayCoalescesLastWritePerProperty) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  Version v0 = g.CurrentVersion();
  {
    auto txn = g.BeginWrite({tiny.messages[0]});
    // Same property three times: only the last survives.
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(1));
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(2));
    txn->SetProperty(tiny.messages[0], tiny.len, Value::Int(3));
    // A second property in the same transaction, written out of id order.
    txn->SetProperty(tiny.messages[0], tiny.id, Value::Int(42));
    txn->Commit();
  }
  Version v1 = g.CurrentVersion();
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, v1), Value::Int(3));
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.id, v1), Value::Int(42));
  // The old snapshot still reads base values.
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, v0), Value::Int(140));
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.id, v0), Value::Int(0));
  // A later single-property write stacks a new entry; the untouched
  // property falls through to the older entry.
  CommitLen(&tiny, 0, 9);
  Version v2 = g.CurrentVersion();
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.len, v2), Value::Int(9));
  EXPECT_EQ(g.GetProperty(tiny.messages[0], tiny.id, v2), Value::Int(42));
}

TEST(MvccGcTest, NewVertexRegistryPruneKeepsVerticesAlive) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  constexpr int kNew = 200;
  for (int i = 0; i < kNew; ++i) {
    auto txn = g.BeginWrite({tiny.persons[0]});
    VertexId nv =
        txn->CreateVertex(tiny.person, 1000 + i, {{tiny.id, Value::Int(i)}});
    ASSERT_TRUE(txn->AddEdge(tiny.knows, tiny.persons[0], nv, i).ok());
    txn->Commit();
  }
  Version v = g.CurrentVersion();
  ASSERT_EQ(g.NumVertices(tiny.person, v), 4u + kNew);

  g.PruneVersions();  // registry prune returns allocator slack only

  // Registry contents are live data: everything stays findable.
  EXPECT_EQ(g.NumVertices(tiny.person, v), 4u + kNew);
  for (int i = 0; i < kNew; ++i) {
    VertexId nv = g.FindByExtId(tiny.person, 1000 + i, v);
    ASSERT_NE(nv, kInvalidVertex) << "ext " << (1000 + i);
    EXPECT_EQ(g.GetProperty(nv, tiny.id, v), Value::Int(i));
  }
  // And creation versions still gate visibility for old snapshots.
  EXPECT_EQ(g.NumVertices(tiny.person, 0), 4u);
}

// Satellite 4 (the TSan target): a reader pinned at S sees byte-identical
// results before, during and after concurrent commit + prune storms, in
// every ExecMode.
TEST(MvccGcTest, PinnedReaderSurvivesPruneStorm) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  // Some pre-pin history so the pin sits mid-chain, not at the base.
  for (int i = 0; i < 8; ++i) {
    CommitLen(&tiny, i % 6, 200 + i);
    CommitKnows(&tiny, i % 4, (i + 1) % 4, i);
  }
  SnapshotHandle pin = g.PinSnapshot();
  Version s = pin.version();

  // Reference answer at S: persons with their knows-degree and every
  // message length — covers AdjOverlay, PropOverlay and base fallbacks.
  PlanBuilder pb("gc_probe");
  pb.ScanByLabel("m", tiny.message)
      .GetProperty("m", tiny.id, ValueType::kInt64, "mid")
      .GetProperty("m", tiny.len, ValueType::kInt64, "mlen")
      .Output({"mid", "mlen"});
  Plan plan = pb.Build();

  const ExecMode kModes[] = {ExecMode::kVolcano, ExecMode::kFlat,
                             ExecMode::kFactorized,
                             ExecMode::kFactorizedFused};
  std::vector<std::vector<std::string>> expected;
  for (ExecMode mode : kModes) {
    Executor exec(mode);
    GraphView view(&g, s);
    expected.push_back(SortedRows(exec.Run(plan, view).table));
  }
  ASSERT_FALSE(expected[0].empty());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  // Two writers keep stacking versions on the chains the reader resolves.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&tiny, t] {
      for (int i = 0; i < 300; ++i) {
        CommitLen(&tiny, (t * 3 + i) % 6, 10000 + t * 1000 + i);
        CommitKnows(&tiny, t, (t + 2) % 4, i);
      }
    });
  }
  // The GC thread prunes continuously: with the pin at S, every pass cuts
  // chains at S while the reader is mid-walk.
  std::thread gc([&g, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      g.PruneVersions();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  // The pinned reader re-executes the probe across all engines.
  std::thread reader([&] {
    size_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ExecMode mode = kModes[round % 4];
      Executor exec(mode);
      GraphView view(&g, s);
      auto rows = SortedRows(exec.Run(plan, view).table);
      if (rows != expected[round % 4]) mismatches.fetch_add(1);
      ++round;
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  gc.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "pinned snapshot changed under a concurrent prune storm";

  // After the storm: still byte-identical at S, and correct at head.
  for (size_t i = 0; i < 4; ++i) {
    Executor exec(kModes[i]);
    GraphView view(&g, s);
    EXPECT_EQ(SortedRows(exec.Run(plan, view).table), expected[i])
        << "mode=" << ExecModeName(kModes[i]);
  }
  pin.Release();
  GcStats gc_final = g.PruneVersions();
  EXPECT_EQ(gc_final.watermark, g.CurrentVersion());
  Executor exec(ExecMode::kFactorizedFused);
  GraphView view(&g, g.CurrentVersion());
  EXPECT_EQ(exec.Run(plan, view).table.NumRows(), 6u);
}

// Delta-merge compaction (DESIGN.md §16) obeys the same contract as
// pruning: a reader pinned at S sees byte-identical results while
// relations are repeatedly merged into fresh compressed segments and
// atomically swapped underneath it, in every ExecMode. The probe expands
// over KNOWS so every engine decodes segment spans, not just overlays.
TEST(MvccGcTest, PinnedReaderSurvivesCompactionStorm) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  for (int i = 0; i < 8; ++i) {
    CommitLen(&tiny, i % 6, 200 + i);
    CommitKnows(&tiny, i % 4, (i + 1) % 4, i);
  }
  SnapshotHandle pin = g.PinSnapshot();
  Version s = pin.version();

  PlanBuilder pb("compaction_probe");
  pb.ScanByLabel("p", tiny.person)
      .ExpandEx("p", "q", {tiny.knows_out}, 1, 1, /*distinct=*/false,
                /*exclude_start=*/false, /*distance_column=*/"",
                /*stamp_column=*/"stamp")
      .GetProperty("p", tiny.id, ValueType::kInt64, "pid")
      .GetProperty("q", tiny.id, ValueType::kInt64, "qid")
      .Output({"pid", "qid", "stamp"});
  Plan plan = pb.Build();

  const ExecMode kModes[] = {ExecMode::kVolcano, ExecMode::kFlat,
                             ExecMode::kFactorized,
                             ExecMode::kFactorizedFused};
  std::vector<std::vector<std::string>> expected;
  for (ExecMode mode : kModes) {
    Executor exec(mode);
    GraphView view(&g, s);
    expected.push_back(SortedRows(exec.Run(plan, view).table));
  }
  ASSERT_FALSE(expected[0].empty());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  // Writers keep dirtying the compacted relations so every compactor pass
  // finds fresh overlay chains to fold in.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&tiny, t] {
      for (int i = 0; i < 200; ++i) {
        CommitLen(&tiny, (t * 3 + i) % 6, 10000 + t * 1000 + i);
        CommitKnows(&tiny, t, (t + 2) % 4, i);
      }
    });
  }
  // The compactor thread force-merges continuously: each pass rebuilds the
  // segments and swaps them while the reader is mid-decode. GC interleaves
  // so retired segment batches actually get reclaimed during the storm.
  std::thread compactor([&g, &stop] {
    CompactionOptions opts;
    opts.force = true;
    while (!stop.load(std::memory_order_acquire)) {
      g.CompactRelations(opts);
      g.PruneVersions();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread reader([&] {
    size_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ExecMode mode = kModes[round % 4];
      Executor exec(mode);
      GraphView view(&g, s);
      auto rows = SortedRows(exec.Run(plan, view).table);
      if (rows != expected[round % 4]) mismatches.fetch_add(1);
      ++round;
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  compactor.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "pinned snapshot changed under a concurrent compaction storm";

  for (size_t i = 0; i < 4; ++i) {
    Executor exec(kModes[i]);
    GraphView view(&g, s);
    EXPECT_EQ(SortedRows(exec.Run(plan, view).table), expected[i])
        << "mode=" << ExecModeName(kModes[i]);
  }
  // After release the final pass reclaims every retired batch and head
  // reads resolve against the freshly compacted segments.
  pin.Release();
  g.CompactRelations(CompactionOptions{.force = true});
  g.PruneVersions();
  EXPECT_TRUE(g.RelationCompacted(tiny.knows_out));
  Executor exec(ExecMode::kFactorizedFused);
  GraphView view(&g, g.CurrentVersion());
  EXPECT_GT(exec.Run(plan, view).table.NumRows(), 0u);
}

// Scaled-down version of the headline soak: sustained updates against a
// pinned-then-released reader. With the pin held, overlay bytes grow; once
// it is released, periodic pruning makes memory plateau near the floor.
TEST(MvccGcTest, SoakOverlayBytesPlateauAfterPinRelease) {
  TinyGraph tiny;
  Graph& g = *tiny.graph;
  constexpr int kTxns = 4000;
  constexpr int kGcEvery = 250;

  SnapshotHandle pin = g.PinSnapshot();
  for (int i = 0; i < kTxns; ++i) {
    CommitLen(&tiny, i % 6, i);
    if (i % kGcEvery == 0) g.PruneVersions();
  }
  size_t pinned_growth = g.OverlayBytes();
  // The pin blocks reclamation: chains hold ~kTxns entries despite GC.
  EXPECT_GT(pinned_growth, static_cast<size_t>(kTxns) * sizeof(Version));

  pin.Release();
  g.PruneVersions();
  size_t floor_bytes = g.OverlayBytes();
  EXPECT_LT(floor_bytes, pinned_growth / 10)
      << "releasing the watermark must let GC collapse the backlog";

  // Steady state: updates keep coming, GC keeps up, memory plateaus.
  size_t peak = 0;
  for (int i = 0; i < kTxns; ++i) {
    CommitLen(&tiny, i % 6, i);
    if (i % kGcEvery == 0) {
      g.PruneVersions();
      peak = std::max(peak, g.OverlayBytes());
    }
  }
  g.PruneVersions();
  EXPECT_LT(peak, pinned_growth / 4)
      << "with the watermark free, steady-state memory must plateau far "
         "below the pinned-growth curve";
  // Reads remain correct throughout.
  Version head = g.CurrentVersion();
  EXPECT_EQ(g.GetProperty(tiny.messages[(kTxns - 1) % 6], tiny.len, head),
            Value::Int(kTxns - 1));
}

// --- service-level GC driver -------------------------------------------

service::ServiceConfig FastGcConfig() {
  service::ServiceConfig config;
  config.query_workers = 2;
  config.gc_interval_seconds = 0.05;
  config.gc_trigger_bytes = 0;      // interval-driven only, deterministic
  config.idle_timeout_seconds = 0;  // GC must run regardless (satellite 2)
  return config;
}

TEST(MvccGcServiceTest, ReaperDrivesGcWithIdleReapingDisabled) {
  testutil::SnbFixture fx;
  service::Server server(&fx.graph, &fx.data, FastGcConfig());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // No sessions: the watermark is the current version, so the reaper's GC
  // pass collapses whatever the writers below stack up.
  PropertyId len = fx.data.schema.length;
  for (int i = 0; i < 64; ++i) {
    auto txn = fx.graph.BeginWrite({fx.data.posts[0]});
    txn->SetProperty(fx.data.posts[0], len, Value::Int(i));
    txn->Commit();
  }
  // Wait for the reaper to have pruned (50 ms tick + 50 ms interval).
  for (int spin = 0; spin < 100 && server.stats().versions_pruned.load() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(server.stats().gc_runs.load(), 0u);
  EXPECT_GT(server.stats().versions_pruned.load(), 0u);
  EXPECT_GT(server.stats().gc_watermark.load(), 0u);
  server.Drain(1.0);
}

TEST(MvccGcServiceTest, SessionPinHoldsWatermarkUntilDisconnect) {
  testutil::SnbFixture fx;
  service::Server server(&fx.graph, &fx.data, FastGcConfig());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  auto client = std::make_unique<service::Client>();
  ASSERT_TRUE(client->Connect("127.0.0.1", server.port()));
  Version pinned = client->snapshot();
  ASSERT_EQ(fx.graph.OldestActiveSnapshot(), pinned);

  PropertyId len = fx.data.schema.length;
  for (int i = 0; i < 16; ++i) {
    auto txn = fx.graph.BeginWrite({fx.data.posts[0]});
    txn->SetProperty(fx.data.posts[0], len, Value::Int(100 + i));
    txn->Commit();
  }
  ASSERT_GT(fx.graph.CurrentVersion(), pinned);
  // The connected session blocks the watermark at its snapshot.
  EXPECT_EQ(fx.graph.OldestActiveSnapshot(), pinned);

  // kCheckpoint doubles as a GC telemetry probe, durable or not.
  service::CheckpointInfo info;
  std::string detail;
  EXPECT_FALSE(client->Checkpoint(&detail, &info)) << "non-durable refusal";
  EXPECT_EQ(info.watermark, pinned);

  // RefreshSnapshot re-pins at the current version; the watermark follows.
  uint64_t refreshed = 0;
  ASSERT_TRUE(client->RefreshSnapshot(&refreshed));
  EXPECT_EQ(refreshed, fx.graph.CurrentVersion());
  EXPECT_EQ(fx.graph.OldestActiveSnapshot(), refreshed);

  // Disconnect releases the pin entirely.
  client.reset();
  for (int spin = 0; spin < 100 && fx.graph.ActiveSnapshots() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.graph.ActiveSnapshots(), 0u);
  EXPECT_EQ(fx.graph.OldestActiveSnapshot(), fx.graph.CurrentVersion());
  server.Drain(1.0);
}

// Satellite 2: a session that parks on an old snapshot while commits flow
// is exported (and logged) as the watermark holder.
TEST(MvccGcServiceTest, WatermarkStallExportsHoldingSession) {
  service::ServiceConfig config = FastGcConfig();
  config.watermark_alert_seconds = 0.05;
  testutil::SnbFixture fx;
  service::Server server(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  service::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  PropertyId len = fx.data.schema.length;
  for (int i = 0; i < 8; ++i) {
    auto txn = fx.graph.BeginWrite({fx.data.posts[0]});
    txn->SetProperty(fx.data.posts[0], len, Value::Int(i));
    txn->Commit();
  }
  // The reaper flags the session once it trails the version counter for
  // longer than the alert threshold.
  for (int spin = 0;
       spin < 200 && server.stats().watermark_held_by_session.load() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.stats().watermark_held_by_session.load(),
            client.session_id());
  EXPECT_GT(server.stats().watermark_stalls.load(), 0u);

  // Refreshing clears the stall: the session now sits at the head.
  ASSERT_TRUE(client.RefreshSnapshot());
  for (int spin = 0;
       spin < 200 && server.stats().watermark_held_by_session.load() != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.stats().watermark_held_by_session.load(), 0u);
  server.Drain(1.0);
}

// A query admitted at snapshot S holds its own pin: even if the session
// refreshes away and GC storms, the executing query's chains stay alive.
TEST(MvccGcServiceTest, InflightQueryPinsItsSnapshot) {
  service::ServiceConfig config = FastGcConfig();
  testutil::SnbFixture fx;
  service::Server server(&fx.graph, &fx.data, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  service::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  Version pinned = client.snapshot();

  // Park a SLEEP query (holds a worker + its snapshot pin for 300 ms).
  service::QueryRequest sleep_req;
  sleep_req.kind = service::QueryKind::kSleep;
  sleep_req.seed = 300;
  sleep_req.query_id = client.AllocQueryId();
  ASSERT_TRUE(client.Send(sleep_req));

  // Advance the graph, then refresh the session away from the query's
  // snapshot: the in-flight query's own registration must keep the
  // watermark at `pinned`.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    PropertyId len = fx.data.schema.length;
    auto txn = fx.graph.BeginWrite({fx.data.posts[0]});
    txn->SetProperty(fx.data.posts[0], len, Value::Int(1));
    ASSERT_GT(txn->Commit(), pinned);
  }
  ASSERT_TRUE(client.RefreshSnapshot());
  EXPECT_EQ(fx.graph.OldestActiveSnapshot(), pinned)
      << "query pin must survive the session re-pin";

  service::QueryResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, service::WireStatus::kOk);
  // Query done: its pin is released with the QueryContext; only the
  // session pin (at the refreshed version) remains.
  for (int spin = 0;
       spin < 100 && fx.graph.OldestActiveSnapshot() == pinned; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(fx.graph.OldestActiveSnapshot(), pinned);
  server.Drain(1.0);
}

}  // namespace
}  // namespace ges
