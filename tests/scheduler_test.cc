// TaskScheduler unit tests: morsel coverage, nesting, exception
// propagation, shutdown semantics, and the per-thread scratch arena.
#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ges {
namespace {

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  TaskScheduler& sched = TaskScheduler::Global();
  constexpr size_t kN = 10007;  // prime: exercises the remainder morsel
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  sched.ParallelFor(0, kN, 64, 4, [&](size_t lo, size_t hi) {
    ASSERT_LT(lo, hi);
    ASSERT_LE(hi, kN);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  TaskScheduler& sched = TaskScheduler::Global();
  int calls = 0;
  sched.ParallelFor(5, 5, 16, 4, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range smaller than one morsel is a single chunk.
  std::atomic<int> chunks{0};
  std::atomic<size_t> covered{0};
  sched.ParallelFor(10, 13, 16, 4, [&](size_t lo, size_t hi) {
    chunks.fetch_add(1);
    covered.fetch_add(hi - lo);
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 13u);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 3u);
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfWorkerBound) {
  // The determinism contract: identical chunking for every max_workers.
  TaskScheduler& sched = TaskScheduler::Global();
  auto chunks_at = [&](int max_workers) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    sched.ParallelFor(3, 1000, 37, max_workers, [&](size_t lo, size_t hi) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.emplace(lo, hi);
    });
    return chunks;
  };
  auto seq = chunks_at(1);
  EXPECT_EQ(seq, chunks_at(2));
  EXPECT_EQ(seq, chunks_at(8));
}

TEST(ParallelForTest, NestedParallelForCompletes) {
  TaskScheduler& sched = TaskScheduler::Global();
  constexpr size_t kOuter = 40;
  constexpr size_t kInner = 200;
  std::atomic<size_t> total{0};
  sched.ParallelFor(0, kOuter, 4, 4, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      sched.ParallelFor(0, kInner, 16, 4, [&](size_t jlo, size_t jhi) {
        total.fetch_add(jhi - jlo);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ParallelForTest, ExceptionPropagatesAndSchedulerSurvives) {
  TaskScheduler& sched = TaskScheduler::Global();
  EXPECT_THROW(sched.ParallelFor(0, 1000, 8, 4,
                                 [&](size_t lo, size_t) {
                                   if (lo >= 504) {
                                     throw std::runtime_error("morsel boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain fully usable afterwards.
  std::atomic<size_t> covered{0};
  sched.ParallelFor(0, 512, 8, 4,
                    [&](size_t lo, size_t hi) { covered.fetch_add(hi - lo); });
  EXPECT_EQ(covered.load(), 512u);
}

TEST(TaskGroupTest, RunsEveryTask) {
  TaskScheduler& sched = TaskScheduler::Global();
  std::atomic<int> done{0};
  TaskGroup group(&sched);
  for (int i = 0; i < 64; ++i) {
    group.Run([&] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskGroupTest, WaitRethrowsFirstException) {
  TaskScheduler& sched = TaskScheduler::Global();
  TaskGroup group(&sched);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Run([&, i] {
      ran.fetch_add(1);
      if (i == 7) throw std::logic_error("task boom");
    });
  }
  EXPECT_THROW(group.Wait(), std::logic_error);
  EXPECT_EQ(ran.load(), 16);  // one failure does not cancel siblings
}

TEST(ShutdownTest, DrainsQueuedWork) {
  // A private pool, so shutting it down leaves the global one alone.
  TaskScheduler sched(2);
  std::atomic<int> done{0};
  TaskGroup group(&sched);
  for (int i = 0; i < 128; ++i) {
    group.Run([&] { done.fetch_add(1); });
  }
  sched.Shutdown();  // must execute whatever was still queued
  group.Wait();
  EXPECT_EQ(done.load(), 128);
}

TEST(ShutdownTest, PostShutdownSubmitRunsInline) {
  TaskScheduler sched(2);
  sched.Shutdown();
  std::atomic<int> done{0};
  TaskGroup group(&sched);
  group.Run([&] { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 1);  // executed inline during Run
  group.Wait();
  std::atomic<size_t> covered{0};
  sched.ParallelFor(0, 100, 10, 4,
                    [&](size_t lo, size_t hi) { covered.fetch_add(hi - lo); });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(LocalArenaTest, AllocatesAndResetsAfterParallelRegion) {
  TaskScheduler& sched = TaskScheduler::Global();
  std::atomic<int> nonnull{0};
  sched.ParallelFor(0, 16, 1, 4, [&](size_t, size_t) {
    Arena& arena = TaskScheduler::LocalArena();
    int* p = arena.AllocateArray<int>(1024);
    for (int i = 0; i < 1024; ++i) p[i] = i;
    if (p != nullptr && p[1023] == 1023) nonnull.fetch_add(1);
  });
  EXPECT_EQ(nonnull.load(), 16);
  // Back on the caller thread, outside any parallel region, the caller's
  // arena has been reset.
  EXPECT_EQ(TaskScheduler::LocalArena().bytes_allocated(), 0u);
}

}  // namespace
}  // namespace ges
