// Fraud detection: a custom (non-SNB) schema showing that the engine is a
// general LPG store, one of the anti-fraud scenarios the paper motivates.
//
// Accounts share devices; some accounts are flagged. We hunt for
// "guilt-by-association" rings: accounts that share a device with a flagged
// account, ranked by how many flagged accounts they touch, and we stream
// new transactions in through MV2PL while querying.
//
//   $ ./build/examples/fraud_detection
#include <cstdio>

#include "common/random.h"
#include "executor/executor.h"
#include "harness/report.h"
#include "storage/graph.h"

using namespace ges;

int main() {
  Graph graph;
  Catalog& catalog = graph.catalog();
  LabelId account = catalog.AddVertexLabel("ACCOUNT");
  LabelId device = catalog.AddVertexLabel("DEVICE");
  LabelId merchant = catalog.AddVertexLabel("MERCHANT");
  LabelId uses = catalog.AddEdgeLabel("USES");
  LabelId pays = catalog.AddEdgeLabel("PAYS");
  PropertyId acc_id = catalog.AddProperty(account, "id", ValueType::kInt64);
  PropertyId flagged =
      catalog.AddProperty(account, "flagged", ValueType::kBool);
  PropertyId risk = catalog.AddProperty(account, "risk", ValueType::kDouble);
  catalog.AddProperty(device, "id", ValueType::kInt64);
  catalog.AddProperty(merchant, "id", ValueType::kInt64);
  graph.RegisterRelation(account, uses, device);
  graph.RegisterRelation(account, pays, merchant, /*has_stamp=*/true);

  // Synthetic population: 4000 accounts, 1500 devices (shared by design),
  // 200 merchants; 2% of accounts start flagged.
  Rng rng(2024);
  constexpr int kAccounts = 4000, kDevices = 1500, kMerchants = 200;
  std::vector<VertexId> accounts, devices, merchants;
  for (int i = 0; i < kAccounts; ++i) {
    VertexId v = graph.AddVertexBulk(account, i);
    graph.SetPropertyBulk(v, acc_id, Value::Int(i));
    graph.SetPropertyBulk(v, flagged, Value::Bool(rng.Bernoulli(0.02)));
    graph.SetPropertyBulk(v, risk, Value::Double(rng.NextDouble()));
    accounts.push_back(v);
  }
  for (int i = 0; i < kDevices; ++i) {
    VertexId v = graph.AddVertexBulk(device, i);
    graph.SetPropertyBulk(v, catalog.Property("id"), Value::Int(i));
    devices.push_back(v);
  }
  for (int i = 0; i < kMerchants; ++i) {
    VertexId v = graph.AddVertexBulk(merchant, i);
    graph.SetPropertyBulk(v, catalog.Property("id"), Value::Int(i));
    merchants.push_back(v);
  }
  ZipfSampler device_zipf(kDevices, 0.8);  // fraud farms share few devices
  for (int i = 0; i < kAccounts; ++i) {
    int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int k = 0; k < n; ++k) {
      graph.AddEdgeBulk(uses, accounts[i], devices[device_zipf.Sample(rng)]);
    }
    int tx = static_cast<int>(rng.Uniform(8));
    for (int k = 0; k < tx; ++k) {
      graph.AddEdgeBulk(pays, accounts[i],
                        merchants[rng.Uniform(kMerchants)],
                        static_cast<int64_t>(rng.Uniform(1000000)));
    }
  }
  graph.FinalizeBulk();
  std::printf("loaded %zu vertices, %zu edges\n", graph.NumVerticesTotal(),
              graph.NumEdgesTotal());

  RelationId acc_devices =
      graph.FindRelation(account, uses, device, Direction::kOut);
  RelationId device_accs =
      graph.FindRelation(device, uses, account, Direction::kIn);

  // Ring hunt: flagged account -> its devices -> co-users, scored by the
  // number of flagged co-ownership paths. The pattern is a pure tree, so
  // the factorized engine handles it natively end to end.
  PlanBuilder b("ring-hunt");
  b.ScanByLabel("bad", account)
      .GetProperty("bad", flagged, ValueType::kBool, "is_flagged")
      .Filter(Expr::Eq(Expr::Col("is_flagged"), Expr::Lit(Value::Bool(true))))
      .Expand("bad", "dev", {acc_devices})
      .Expand("dev", "peer", {device_accs})
      .GetProperty("peer", flagged, ValueType::kBool, "peer_flagged")
      .Filter(Expr::Eq(Expr::Col("peer_flagged"),
                       Expr::Lit(Value::Bool(false))))
      .GetProperty("peer", acc_id, ValueType::kInt64, "peer_id")
      .Aggregate({"peer_id"}, {AggSpec{AggSpec::kCount, "", "paths"}})
      .OrderBy({{"paths", false}, {"peer_id", true}}, 15)
      .Output({"peer_id", "paths"});
  Plan plan = b.Build();
  GraphView view(&graph);

  Executor fused(ExecMode::kFactorizedFused);
  QueryResult result = fused.Run(plan, view);
  std::printf("\naccounts most entangled with flagged accounts:\n");
  for (const auto& row : result.table.rows()) {
    std::printf("  account %-6ld flagged-paths %ld\n", row[0].AsInt(),
                row[1].AsInt());
  }

  std::printf("\nengine comparison on the ring hunt:\n");
  for (ExecMode mode : {ExecMode::kVolcano, ExecMode::kFlat,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    QueryResult r = Executor(mode).Run(plan, view);
    std::printf("  %-8s %10s  peak intermediates %s\n", ExecModeName(mode),
                HumanMillis(r.stats.total_millis).c_str(),
                HumanBytes(r.stats.peak_intermediate_bytes).c_str());
  }

  // Live ingestion: flag an account and link it to a busy device inside an
  // MV2PL transaction, then re-run the hunt on a fresh snapshot.
  VertexId suspect = accounts[123];
  {
    auto txn = graph.BeginWrite({suspect, devices[0]});
    txn->SetProperty(suspect, flagged, Value::Bool(true));
    txn->AddEdge(uses, suspect, devices[0]);
    txn->Commit();
  }
  QueryResult after = fused.Run(plan, GraphView(&graph));
  std::printf("\nafter flagging account 123 (new snapshot): %zu ring "
              "candidates (was %zu)\n",
              after.table.NumRows(), result.table.NumRows());
  return 0;
}
