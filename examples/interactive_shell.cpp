// Interactive shell: type mini-Cypher queries against a generated SNB
// graph; each query is compiled by the frontend and executed by the fused
// factorized engine (switchable at runtime).
//
//   $ ./build/examples/interactive_shell [scale_factor]
//   ges> MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) WHERE id(p) = 5
//        RETURN f.id, f.firstName ORDER BY f.id ASC LIMIT 10
//   ges> :mode flat          (switch engine: volcano | flat | f | fused)
//   ges> :explain <query>    (show the compiled plan, before/after fusion)
//   ges> :quit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "datagen/snb_generator.h"
#include "executor/executor.h"
#include "executor/explain.h"
#include "executor/optimizer.h"
#include "frontend/parser.h"
#include "harness/report.h"

using namespace ges;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  SnbConfig config;
  config.scale_factor = sf;
  Graph graph;
  std::printf("generating SNB graph (SF=%.3g)...\n", sf);
  GenerateSnb(config, &graph);
  std::printf("ready: %zu vertices, %zu edges. Labels: PERSON POST COMMENT "
              "FORUM TAG TAGCLASS PLACE ORGANISATION\n",
              graph.NumVerticesTotal(), graph.NumEdgesTotal());
  std::printf("example:\n  MATCH (p:PERSON)-[:KNOWS*1..2]->(f:PERSON) WHERE "
              "id(p) = 5 RETURN f.id, f.firstName ORDER BY f.id ASC LIMIT "
              "10\ncommands: :mode volcano|flat|f|fused, :explain <query>, "
              ":quit\n");

  ExecMode mode = ExecMode::kFactorizedFused;
  std::string line;
  while (true) {
    std::printf("ges[%s]> ", ExecModeName(mode));
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    if (line.rfind(":explain ", 0) == 0) {
      Plan plan;
      Status s = CompileQuery(line.substr(9), graph, &plan);
      if (!s.ok()) {
        std::printf("error: %s\n", s.message().c_str());
        continue;
      }
      std::printf("%s", ExplainPlan(plan).c_str());
      if (mode == ExecMode::kFactorizedFused) {
        std::printf("after fusion:\n%s",
                    ExplainPlan(OptimizePlan(plan, ExecOptions{})).c_str());
      }
      continue;
    }
    if (line.rfind(":mode ", 0) == 0) {
      std::string m = line.substr(6);
      if (m == "volcano") {
        mode = ExecMode::kVolcano;
      } else if (m == "flat") {
        mode = ExecMode::kFlat;
      } else if (m == "f") {
        mode = ExecMode::kFactorized;
      } else if (m == "fused") {
        mode = ExecMode::kFactorizedFused;
      } else {
        std::printf("unknown mode '%s'\n", m.c_str());
      }
      continue;
    }

    Plan plan;
    Status s = CompileQuery(line, graph, &plan);
    if (!s.ok()) {
      std::printf("error: %s\n", s.message().c_str());
      continue;
    }
    Executor exec(mode);
    GraphView view(&graph);
    QueryResult r = exec.Run(plan, view);

    // Header.
    for (const ColumnDef& c : r.table.schema().columns()) {
      std::printf("%-18s", c.name.c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const auto& row : r.table.rows()) {
      for (const Value& v : row) {
        std::printf("%-18s", v.ToString().c_str());
      }
      std::printf("\n");
      if (++shown >= 50) {
        std::printf("... (%zu more rows)\n", r.table.NumRows() - shown);
        break;
      }
    }
    std::printf("%zu row(s) in %s, peak intermediates %s\n",
                r.table.NumRows(), HumanMillis(r.stats.total_millis).c_str(),
                HumanBytes(r.stats.peak_intermediate_bytes).c_str());
  }
  return 0;
}
