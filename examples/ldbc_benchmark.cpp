// Full LDBC SNB Interactive benchmark kit: generate a graph, fire the
// official-style mix at a chosen engine variant, and print the per-query
// report (count / mean / p50 / p99 / p99.9) plus overall throughput — the
// in-process equivalent of an LDBC driver run.
//
//   $ ./build/examples/ldbc_benchmark [options]
//       --sf <x>         scale factor              (default 0.05)
//       --mode <m>       volcano|flat|f|fused      (default fused)
//       --threads <n>    driver threads            (default 4)
//       --seconds <s>    run duration              (default 10)
//       --no-updates     read-only mix
//       --seed <n>       workload seed             (default 7)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "datagen/snb_generator.h"
#include "harness/driver.h"
#include "harness/report.h"

using namespace ges;

int main(int argc, char** argv) {
  double sf = 0.05;
  ExecMode mode = ExecMode::kFactorizedFused;
  int threads = 4;
  double seconds = 10;
  bool updates = true;
  uint64_t seed = 7;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sf") == 0) {
      sf = std::atof(need_value("--sf"));
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      const char* m = need_value("--mode");
      if (std::strcmp(m, "volcano") == 0) {
        mode = ExecMode::kVolcano;
      } else if (std::strcmp(m, "flat") == 0) {
        mode = ExecMode::kFlat;
      } else if (std::strcmp(m, "f") == 0) {
        mode = ExecMode::kFactorized;
      } else if (std::strcmp(m, "fused") == 0) {
        mode = ExecMode::kFactorizedFused;
      } else {
        std::fprintf(stderr, "unknown mode '%s'\n", m);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::atof(need_value("--seconds"));
    } else if (std::strcmp(argv[i], "--no-updates") == 0) {
      updates = false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(need_value("--seed")));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  Graph graph;
  SnbConfig config;
  config.scale_factor = sf;
  std::printf("generating SNB graph: SF=%.3g (%zu persons)...\n", sf,
              SnbPersonCount(sf));
  SnbData data = GenerateSnb(config, &graph);
  std::printf("graph: %zu vertices, %zu edges, %s\n",
              graph.NumVerticesTotal(), graph.NumEdgesTotal(),
              HumanBytes(graph.MemoryBytes()).c_str());

  Driver driver(&graph, &data);
  DriverConfig dc;
  dc.mode = mode;
  dc.options.collect_stats = false;
  dc.threads = threads;
  dc.duration_seconds = seconds;
  dc.total_ops = 0;  // pure duration run
  dc.include_updates = updates;
  dc.seed = seed;
  std::printf("running %s for %.0fs on %d thread(s), updates %s...\n",
              ExecModeName(mode), seconds, threads, updates ? "on" : "off");
  DriverReport report = driver.Run(dc);

  TextTable table({"query", "count", "mean", "p50", "p99", "p99.9", "max"});
  for (const auto& [name, rec] : report.per_query) {
    table.AddRow({name, std::to_string(rec.count()),
                  HumanMillis(rec.Mean()), HumanMillis(rec.Percentile(50)),
                  HumanMillis(rec.Percentile(99)),
                  HumanMillis(rec.Percentile(99.9)),
                  HumanMillis(rec.Max())});
  }
  table.Print();

  for (QueryKind kind :
       {QueryKind::kIC, QueryKind::kIS, QueryKind::kIU}) {
    LatencyRecorder agg = report.Aggregate(kind);
    if (agg.count() == 0) continue;
    const char* label = kind == QueryKind::kIC   ? "IC"
                        : kind == QueryKind::kIS ? "IS"
                                                 : "IU";
    std::printf("%s: %zu ops, mean %s, p99 %s\n", label, agg.count(),
                HumanMillis(agg.Mean()).c_str(),
                HumanMillis(agg.Percentile(99)).c_str());
  }
  std::printf("\noverall: %llu operations in %.2fs -> %.0f q/s (%s)\n",
              static_cast<unsigned long long>(report.completed),
              report.elapsed_seconds, report.throughput, ExecModeName(mode));
  return 0;
}
