// Social recommendation: the "people you may know" scenario from the
// paper's introduction, on a generated SNB social network.
//
// For a start person, recommend friends-of-friends ranked by how many of
// their posts carry one of the start person's interest tags (an IC10-style
// workload), and show how the three engine variants compare on the same
// plan.
//
//   $ ./build/examples/social_recommendation [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "datagen/snb_generator.h"
#include "executor/executor.h"
#include "harness/report.h"
#include "queries/ldbc.h"

using namespace ges;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.05;
  SnbConfig config;
  config.scale_factor = sf;
  Graph graph;
  std::printf("generating social network (SF=%.3g, %zu persons)...\n", sf,
              SnbPersonCount(sf));
  SnbData data = GenerateSnb(config, &graph);
  LdbcContext ctx = LdbcContext::Resolve(graph, data.schema);
  GraphView view(&graph);

  // Pick a well-connected start person: the one with the most friends.
  VertexId start = data.persons[0];
  uint32_t best = 0;
  for (VertexId p : data.persons) {
    uint32_t deg = view.Degree(ctx.knows, p);
    if (deg > best) {
      best = deg;
      start = p;
    }
  }
  int64_t start_ext = view.Property(start, ctx.p_id).AsInt();
  std::printf("start person: external id %ld (%u friends)\n", start_ext,
              best);

  // Friend recommendation: friends-of-friends, scored by posts that match
  // the start person's interests (the cyclic interest check reverts the
  // executor to flat execution — see Section 4.3 of the paper).
  PlanBuilder b("recommendation");
  b.NodeByIdSeek("p", ctx.s.person, start_ext)
      .Expand("p", "fof", {ctx.knows}, 2, 2, /*distinct=*/true,
              /*exclude_start=*/true)
      .Expand("fof", "post", {ctx.person_posts})
      .Expand("post", "tag", {ctx.post_tags})
      .ExpandInto("p", "tag", {ctx.person_interests}, /*anti=*/false)
      .GetProperty("fof", ctx.p_id, ValueType::kInt64, "fof_id")
      .Aggregate({"fof_id"}, {AggSpec{AggSpec::kCount, "", "score"}})
      .OrderBy({{"score", false}, {"fof_id", true}}, 10)
      .Output({"fof_id", "score"});
  Plan plan = b.Build();

  Executor fused(ExecMode::kFactorizedFused);
  QueryResult result = fused.Run(plan, view);
  std::printf("\ntop recommendations (person id, common-interest score):\n");
  for (const auto& row : result.table.rows()) {
    std::printf("  person %-6ld score %ld\n", row[0].AsInt(),
                row[1].AsInt());
  }

  // Same plan on each engine variant.
  std::printf("\nengine comparison on this plan:\n");
  for (ExecMode mode : {ExecMode::kVolcano, ExecMode::kFlat,
                        ExecMode::kFactorized, ExecMode::kFactorizedFused}) {
    Executor exec(mode);
    QueryResult r = exec.Run(plan, view);
    std::printf("  %-8s %10s  peak intermediates %s\n", ExecModeName(mode),
                HumanMillis(r.stats.total_millis).c_str(),
                HumanBytes(r.stats.peak_intermediate_bytes).c_str());
  }

  // A second, factorization-friendly recommendation: recent messages from
  // the extended network (IC9-style), where the f-Tree shines.
  ParamGen params(&graph, &data, 7);
  LdbcParams p = params.Next();
  p.person = start_ext;
  Plan feed = BuildIC(9, ctx, p);
  std::printf("\nnews feed (IC9-style) on the same start person:\n");
  for (ExecMode mode : {ExecMode::kFlat, ExecMode::kFactorizedFused}) {
    Executor exec(mode);
    QueryResult r = exec.Run(feed, view);
    std::printf("  %-8s %10s  peak intermediates %s (%zu rows)\n",
                ExecModeName(mode), HumanMillis(r.stats.total_millis).c_str(),
                HumanBytes(r.stats.peak_intermediate_bytes).c_str(),
                r.table.NumRows());
  }
  return 0;
}
