// Quickstart: define a schema, bulk-load a small labeled property graph,
// run a factorized query through the public plan API, and update the graph
// through an MV2PL transaction.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "executor/executor.h"
#include "harness/report.h"
#include "storage/graph.h"

using namespace ges;

int main() {
  // --- 1. schema ---
  Graph graph;
  Catalog& catalog = graph.catalog();
  LabelId person = catalog.AddVertexLabel("PERSON");
  LabelId city = catalog.AddVertexLabel("CITY");
  LabelId knows = catalog.AddEdgeLabel("KNOWS");
  LabelId lives_in = catalog.AddEdgeLabel("LIVES_IN");
  PropertyId name = catalog.AddProperty(person, "name", ValueType::kString);
  PropertyId age = catalog.AddProperty(person, "age", ValueType::kInt64);
  catalog.AddProperty(city, "name", ValueType::kString);
  graph.RegisterRelation(person, knows, person, /*has_stamp=*/true);
  graph.RegisterRelation(person, lives_in, city);

  // --- 2. bulk load ---
  const char* people[] = {"ada", "grace", "alan", "edsger", "barbara"};
  const char* cities[] = {"london", "zurich"};
  std::vector<VertexId> pv, cv;
  for (int i = 0; i < 5; ++i) {
    VertexId v = graph.AddVertexBulk(person, i);
    graph.SetPropertyBulk(v, name, Value::String(people[i]));
    graph.SetPropertyBulk(v, age, Value::Int(30 + i * 5));
    pv.push_back(v);
  }
  for (int i = 0; i < 2; ++i) {
    VertexId v = graph.AddVertexBulk(city, i);
    graph.SetPropertyBulk(v, name, Value::String(cities[i]));
    cv.push_back(v);
  }
  auto friends = [&](int a, int b, int64_t since) {
    graph.AddEdgeBulk(knows, pv[a], pv[b], since);
    graph.AddEdgeBulk(knows, pv[b], pv[a], since);
  };
  friends(0, 1, 2001);
  friends(0, 2, 2002);
  friends(1, 3, 2003);
  friends(2, 4, 2004);
  for (int i = 0; i < 5; ++i) {
    graph.AddEdgeBulk(lives_in, pv[i], cv[i % 2]);
  }
  graph.FinalizeBulk();
  std::printf("loaded %zu vertices, %zu edges\n", graph.NumVerticesTotal(),
              graph.NumEdgesTotal());

  // --- 3. query: friends-of-friends of ada, adults only, oldest first ---
  RelationId knows_out =
      graph.FindRelation(person, knows, person, Direction::kOut);
  PlanBuilder b("quickstart");
  b.NodeByIdSeek("p", person, /*ext_id=*/0)
      .Expand("p", "f", {knows_out}, /*min_hops=*/1, /*max_hops=*/2,
              /*distinct=*/true, /*exclude_start=*/true)
      .GetProperty("f", age, ValueType::kInt64, "f_age")
      .Filter(Expr::Ge(Expr::Col("f_age"), Expr::Lit(Value::Int(35))))
      .GetProperty("f", name, ValueType::kString, "f_name")
      .OrderBy({{"f_age", false}, {"f_name", true}}, 10)
      .Output({"f_name", "f_age"});
  Plan plan = b.Build();

  // The same plan runs on every engine variant; use the fused factorized
  // engine (the paper's GES_f*).
  Executor executor(ExecMode::kFactorizedFused);
  GraphView snapshot(&graph);
  QueryResult result = executor.Run(plan, snapshot);

  std::printf("\nfriends (within 2 hops) of ada, age >= 35:\n");
  for (const auto& row : result.table.rows()) {
    std::printf("  %-8s %ld\n", row[0].AsString().c_str(), row[1].AsInt());
  }
  std::printf("executed in %s, peak intermediates %s\n",
              HumanMillis(result.stats.total_millis).c_str(),
              HumanBytes(result.stats.peak_intermediate_bytes).c_str());

  // --- 4. update through an MV2PL transaction ---
  Version before = graph.CurrentVersion();
  {
    auto txn = graph.BeginWrite({pv[3], pv[4]});
    txn->AddEdge(knows, pv[3], pv[4], 2025);
    txn->AddEdge(knows, pv[4], pv[3], 2025);
    Version v = txn->Commit();
    std::printf("\ncommitted friendship edsger<->barbara at version %lu\n",
                static_cast<unsigned long>(v));
  }
  // Old snapshots are unaffected; new snapshots see the edge.
  GraphView old_snapshot(&graph, before);
  GraphView new_snapshot(&graph);
  QueryResult old_r = executor.Run(plan, old_snapshot);
  QueryResult new_r = executor.Run(plan, new_snapshot);
  std::printf("rows at old snapshot: %zu, at new snapshot: %zu\n",
              old_r.table.NumRows(), new_r.table.NumRows());
  return 0;
}
