// OLAP analytics: influencer detection, community structure and clustering
// on the social network — the analytical side of the paper's workload
// taxonomy, running on the same MV2PL snapshots as the interactive queries.
//
//   $ ./build/examples/graph_analytics [scale_factor]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analytics/algorithms.h"
#include "common/timer.h"
#include "datagen/snb_generator.h"
#include "harness/report.h"

using namespace ges;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.05;
  SnbConfig config;
  config.scale_factor = sf;
  Graph graph;
  std::printf("generating social network (SF=%.3g)...\n", sf);
  SnbData data = GenerateSnb(config, &graph);
  const SnbSchema& s = data.schema;
  GraphView view(&graph);
  RelationId knows =
      graph.FindRelation(s.person, s.knows, s.person, Direction::kOut);

  // --- influencers: PageRank over the friendship graph ---
  Timer t;
  PageRankResult pr = PageRank(view, s.person, {knows}, 20);
  std::printf("\nPageRank over %zu persons in %s\n", pr.vertices.size(),
              HumanMillis(t.ElapsedMillis()).c_str());
  std::vector<size_t> order(pr.vertices.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pr.scores[a] > pr.scores[b];
  });
  std::printf("top influencers:\n");
  for (size_t i = 0; i < std::min<size_t>(5, order.size()); ++i) {
    VertexId v = pr.vertices[order[i]];
    std::printf("  %-10s %-10s score %.5f (%u friends)\n",
                view.Property(v, s.first_name).AsString().c_str(),
                view.Property(v, s.last_name).AsString().c_str(),
                pr.scores[order[i]], view.Degree(knows, v));
  }

  // --- communities ---
  t.Restart();
  WccResult wcc = WeaklyConnectedComponents(view, s.person, {knows});
  std::map<VertexId, size_t> sizes;
  for (VertexId c : wcc.component) ++sizes[c];
  size_t largest = 0;
  for (const auto& [c, n] : sizes) largest = std::max(largest, n);
  std::printf("\nconnected components in %s: %zu components, largest %zu "
              "persons (%.1f%%)\n",
              HumanMillis(t.ElapsedMillis()).c_str(), wcc.num_components,
              largest, 100.0 * largest / std::max<size_t>(1, wcc.vertices.size()));

  // --- clustering ---
  t.Restart();
  uint64_t triangles = CountTriangles(view, s.person, knows);
  std::printf("friendship triangles in %s: %llu\n",
              HumanMillis(t.ElapsedMillis()).c_str(),
              static_cast<unsigned long long>(triangles));

  // --- degree structure ---
  std::vector<uint64_t> hist = DegreeHistogram(view, s.person, knows);
  uint64_t total = 0, acc = 0;
  for (uint64_t h : hist) total += h;
  std::printf("\ndegree distribution (friends per person):\n");
  size_t max_deg = hist.size() - 1;
  for (size_t d = 0; d < hist.size(); ++d) {
    acc += hist[d];
    if (d <= 2 || d == max_deg || acc * 10 / total != (acc - hist[d]) * 10 / total) {
      std::printf("  degree %-4zu: %llu persons\n", d,
                  static_cast<unsigned long long>(hist[d]));
    }
  }
  std::printf("  max degree: %zu\n", max_deg);

  // --- reach: BFS from the top influencer ---
  if (!order.empty()) {
    VertexId star = pr.vertices[order[0]];
    auto dist = BfsDistances(view, {knows}, star, 3);
    std::map<int, size_t> by_depth;
    for (const auto& [v, d] : dist) ++by_depth[d];
    std::printf("\nreach of the top influencer:\n");
    for (const auto& [d, n] : by_depth) {
      std::printf("  within %d hop(s): %zu persons\n", d, n);
    }
  }
  return 0;
}
