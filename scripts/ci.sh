#!/usr/bin/env bash
# Three-flavor CI sweep (the invocations documented in the root
# CMakeLists.txt sanitizer comment, in runnable form):
#
#   1. Release            — full test suite (the tier-1 gate)
#   2. GES_SANITIZE=thread    — concurrency / gc / replication / planner /
#      compaction labels (the replication stream + semisync ack path, the
#      shared plan cache's lookup/insert/invalidate races, and the
#      delta-merge segment swap under churn must be TSan-clean)
#   3. GES_SANITIZE=undefined — kernels / executor / durability labels
#      plus one pass of bench_filter_selectivity (GES_ITERS=1): the WAL
#      codec and CRC32C are bit-twiddling-heavy
#   4. GES_SANITIZE=address   — governor / service labels: the resource
#      governor's unwind paths (budget kills mid-allocation, watchdog
#      shots, watermark sheds) must be leak- and overflow-clean
#
# Usage: scripts/ci.sh [flavor...]     (default: all four)
#   flavors: release, tsan, ubsan, asan
# Knobs: GES_CI_JOBS (parallel build/test jobs, default nproc),
#        GES_CI_BUILD_ROOT (default build-ci).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${GES_CI_JOBS:-$(nproc)}
ROOT=${GES_CI_BUILD_ROOT:-build-ci}
FLAVORS=("$@")
[[ ${#FLAVORS[@]} -eq 0 ]] && FLAVORS=(release tsan ubsan asan)

build() {  # build <dir> [extra cmake args...]
  local dir=$1; shift
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

for flavor in "${FLAVORS[@]}"; do
  case "$flavor" in
    release)
      echo "=== [ci] Release: full suite + plan-cache bench gate ==="
      build "$ROOT/release"
      ctest --test-dir "$ROOT/release" --output-on-failure -j "$JOBS"
      # Perf acceptance: prepared short reads must hit the cache (>= 99%
      # after warmup) and beat uncached planning by the p50 gate.
      "$ROOT/release/bench/bench_plan_cache"
      ;;
    tsan)
      echo "=== [ci] ThreadSanitizer: concurrency|gc|replication|planner|compaction ==="
      build "$ROOT/tsan" -DGES_SANITIZE=thread
      ctest --test-dir "$ROOT/tsan" --output-on-failure -j "$JOBS" \
        -L 'concurrency|gc|replication|planner|compaction'
      ;;
    ubsan)
      echo "=== [ci] UBSan: kernels|executor|durability + WAL-heavy bench ==="
      build "$ROOT/ubsan" -DGES_SANITIZE=undefined
      ctest --test-dir "$ROOT/ubsan" --output-on-failure -j "$JOBS" \
        -L 'kernels|executor|durability'
      GES_ITERS=1 "$ROOT/ubsan/bench/bench_filter_selectivity"
      ;;
    asan)
      echo "=== [ci] AddressSanitizer: governor|service ==="
      build "$ROOT/asan" -DGES_SANITIZE=address
      ctest --test-dir "$ROOT/asan" --output-on-failure -j "$JOBS" \
        -L 'governor|service'
      ;;
    *)
      echo "[ci] unknown flavor '$flavor' (release, tsan, ubsan, asan)" >&2
      exit 2
      ;;
  esac
done
echo "=== [ci] all flavors green ==="
