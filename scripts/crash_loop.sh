#!/usr/bin/env bash
# Kill-9 crash-recovery loop (DESIGN.md §10).
#
# Runs the crash_recovery_test binary N times against ONE persistent data
# directory, so every run re-opens (and must recover) the directory the
# previous run's SIGKILLed writer left behind. Each run forks, kills and
# recovers GES_CRASH_ITERS times internally; the loop multiplies that into
# hundreds of independent crash points.
#
# Usage: crash_loop.sh <crash_recovery_test binary> [runs] [iters-per-run]
#   e.g. scripts/crash_loop.sh build/tests/crash_recovery_test 25 4
# Acceptance sweep (100+ crash/recover cycles):
#   scripts/crash_loop.sh build/tests/crash_recovery_test 25 4
set -euo pipefail

BIN=${1:?usage: crash_loop.sh <crash_recovery_test binary> [runs] [iters-per-run]}
RUNS=${2:-25}
ITERS=${3:-4}

DIR=$(mktemp -d /tmp/ges_crash_loop_XXXXXX)
trap 'rm -rf "$DIR"' EXIT

for ((run = 1; run <= RUNS; run++)); do
  echo "[crash_loop] run $run/$RUNS (dir $DIR, $ITERS kills per run)"
  GES_CRASH_DIR="$DIR" GES_CRASH_ITERS="$ITERS" \
    "$BIN" --gtest_brief=1 || {
      echo "[crash_loop] FAILED at run $run; data dir kept: $DIR" >&2
      trap - EXIT
      exit 1
    }
done
echo "[crash_loop] OK: $((RUNS * ITERS)) crash/recover cycles, zero committed losses"
