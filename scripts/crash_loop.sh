#!/usr/bin/env bash
# Kill-9 crash loop (DESIGN.md §10, §13).
#
# Runs a crash-drill test binary N times against ONE persistent data
# directory, so every run re-opens (and must recover) the directory the
# previous run's SIGKILLed process left behind. Each run forks, kills and
# recovers GES_CRASH_ITERS times internally; the loop multiplies that into
# hundreds of independent crash points.
#
# Works with any binary honouring the GES_CRASH_DIR / GES_CRASH_ITERS
# contract — crash_recovery_test (single-node durability) and
# replication_failover_test (kill-the-primary failover) both do.
#
# Usage:
#   crash_loop.sh [--bin PATH] [--runs N] [--iters N] [--dir DIR] \
#                 [BIN] [RUNS] [ITERS]
# Positional arguments keep the historical form working:
#   scripts/crash_loop.sh build/tests/crash_recovery_test 25 4
# Environment variables (lowest precedence, for CI wiring):
#   GES_LOOP_BIN, GES_LOOP_RUNS, GES_LOOP_ITERS, GES_LOOP_DIR
# Acceptance sweeps (100+ cycles):
#   scripts/crash_loop.sh build/tests/crash_recovery_test 25 4
#   scripts/crash_loop.sh --bin build/tests/replication_failover_test --runs 10 --iters 2
set -euo pipefail

BIN=${GES_LOOP_BIN:-}
RUNS=${GES_LOOP_RUNS:-25}
ITERS=${GES_LOOP_ITERS:-4}
DIR=${GES_LOOP_DIR:-}

POSITIONAL=()
while (($# > 0)); do
  case "$1" in
    --bin)   BIN=${2:?--bin needs a path};  shift 2 ;;
    --runs)  RUNS=${2:?--runs needs a count}; shift 2 ;;
    --iters) ITERS=${2:?--iters needs a count}; shift 2 ;;
    --dir)   DIR=${2:?--dir needs a path};  shift 2 ;;
    -h|--help)
      sed -n '2,24p' "$0"; exit 0 ;;
    *) POSITIONAL+=("$1"); shift ;;
  esac
done
[[ ${#POSITIONAL[@]} -ge 1 ]] && BIN=${POSITIONAL[0]}
[[ ${#POSITIONAL[@]} -ge 2 ]] && RUNS=${POSITIONAL[1]}
[[ ${#POSITIONAL[@]} -ge 3 ]] && ITERS=${POSITIONAL[2]}

if [[ -z "$BIN" ]]; then
  echo "usage: crash_loop.sh [--bin PATH] [--runs N] [--iters N] [--dir DIR] [BIN] [RUNS] [ITERS]" >&2
  exit 2
fi

OWN_DIR=0
if [[ -z "$DIR" ]]; then
  DIR=$(mktemp -d /tmp/ges_crash_loop_XXXXXX)
  OWN_DIR=1
  trap 'rm -rf "$DIR"' EXIT
else
  mkdir -p "$DIR"
fi

for ((run = 1; run <= RUNS; run++)); do
  echo "[crash_loop] run $run/$RUNS ($(basename "$BIN"), dir $DIR, $ITERS kills per run)"
  GES_CRASH_DIR="$DIR" GES_CRASH_ITERS="$ITERS" \
    "$BIN" --gtest_brief=1 || {
      echo "[crash_loop] FAILED at run $run; data dir kept: $DIR" >&2
      ((OWN_DIR)) && trap - EXIT
      exit 1
    }
done
echo "[crash_loop] OK: $((RUNS * ITERS)) crash cycles, zero acknowledged losses"
