// Figure 12: P99 and P99.9 tail latency per IC query on the largest graph,
// comparing the three engine variants.
//
// Paper shape: GES_f / GES_f* collapse the extreme tails of the
// long-running queries (IC5-style: seconds -> tens of ms).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "harness/stats.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 12: P99 / P99.9 tail latency on the largest scale "
              "==\n");
  auto sfs = EnvSfList();
  double sf = sfs.back();
  int params = EnvInt("GES_PARAMS", 120);
  auto g = MakeGraph(sf);
  GraphView view(&g->graph);
  std::printf("(%d parameter draws per query, %s)\n", params,
              SfLabel(sf).c_str());
  BenchJsonReport json("fig12_tail_latency");
  json.AddScalar("sf", sf);
  json.AddScalar("params", params);

  TextTable table({"query", "GES p99", "GES p99.9", "GES_f p99",
                   "GES_f p99.9", "GES_f* p99", "GES_f* p99.9"});
  for (int k = 1; k <= 14; ++k) {
    std::vector<std::string> row{"IC" + std::to_string(k)};
    for (ExecMode mode : VariantModes()) {
      Executor exec(mode, ExecOptions{.collect_stats = false});
      ParamGen gen(&g->graph, &g->data, 1200 + k);
      LatencyRecorder rec;
      for (int i = 0; i < params; ++i) {
        LdbcParams p = gen.Next();
        Plan plan = BuildIC(k, g->ctx, p);
        Timer t;
        exec.Run(plan, view);
        rec.Add(t.ElapsedMillis());
      }
      json.AddLatency(ExecModeName(mode), "IC" + std::to_string(k), rec);
      row.push_back(HumanMillis(rec.Percentile(99)));
      row.push_back(HumanMillis(rec.Percentile(99.9)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nPaper shape check: GES_f and GES_f* tails far below GES on "
              "the long-running queries; roughly equal on the cheap ones.\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
