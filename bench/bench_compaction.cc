// Background delta-merge compaction soak (DESIGN.md §16): the
// bench_version_gc update storm against a mostly-cold graph, with and
// without periodic CompactRelations passes. Acceptance gates (exit 1):
//
//   memory       compact_on must end with Graph::MemoryBytes() at least
//                GES_COMPACT_MEM_GATE (default 30%) below compact_off —
//                overlay chains and base slack fold into delta+varint
//                segments
//   read p99     compact_on COLD-vertex read probes (the 8128 of 8192
//                vertices outside the update hot set — i.e. almost all
//                reads) must stay within GES_COMPACT_P99_SLACK (default
//                1.5x) of compact_off. Hot-set probes are reported but
//                not gated: a hot vertex accumulates thousands of edges
//                here and re-decoding its compressed span per fetch is
//                the CSR-compression trade-off, visible in the hot column
//   identity     a reader pinned mid-storm must see byte-identical
//                neighbor lists across every segment swap (0 mismatches)
//
// Usage: bench_compaction [--json [path]]
//   env: GES_TXNS (default 60000), GES_GC_EVERY (default 2000),
//        GES_COMPACT_EVERY (default 5000 txns per compaction pass),
//        GES_COMPACT_MEM_GATE (0.30), GES_COMPACT_P99_SLACK (1.5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "storage/graph.h"

namespace ges::bench {
namespace {

constexpr int kVertices = 8192;  // cold bulk so read p99 lands on cold spans
constexpr int kHotVertices = 64;

struct SoakGraph {
  std::unique_ptr<Graph> graph;
  LabelId node;
  LabelId link;
  PropertyId val;
  RelationId link_out;
  std::vector<VertexId> all;
};

SoakGraph MakeSoakGraph() {
  SoakGraph s;
  s.graph = std::make_unique<Graph>();
  Catalog& c = s.graph->catalog();
  s.node = c.AddVertexLabel("NODE");
  s.link = c.AddEdgeLabel("LINK");
  s.val = c.AddProperty(s.node, "val", ValueType::kInt64);
  s.graph->RegisterRelation(s.node, s.link, s.node, /*has_stamp=*/true);
  for (int i = 0; i < kVertices; ++i) {
    VertexId v = s.graph->AddVertexBulk(s.node, i);
    s.graph->SetPropertyBulk(v, s.val, Value::Int(i));
    s.all.push_back(v);
  }
  for (int i = 0; i < kVertices; ++i) {
    s.graph->AddEdgeBulk(s.link, s.all[i], s.all[(i + 1) % kVertices], i);
  }
  s.graph->FinalizeBulk();
  s.link_out = s.graph->FindRelation(s.node, s.link, s.node, Direction::kOut);
  return s;
}

// Sorted (id, stamp) neighbor multiset, tombstone-pruned.
std::vector<std::pair<VertexId, int64_t>> EdgePairs(const Graph& g,
                                                    RelationId rel,
                                                    VertexId v, Version s) {
  AdjScratch scratch;
  AdjSpan span = g.Neighbors(rel, v, s, &scratch);
  std::vector<std::pair<VertexId, int64_t>> out;
  for (uint32_t i = 0; i < span.size; ++i) {
    if (span.ids[i] == kInvalidVertex) continue;
    out.emplace_back(span.ids[i], span.stamps ? span.stamps[i] : 0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct SoakResult {
  LatencyRecorder update;    // per-commit latency (ms)
  LatencyRecorder read;      // per-cold-probe latency (ms) — the gate
  LatencyRecorder read_hot;  // per-hot-probe latency (ms) — informational
  size_t final_memory = 0; // MemoryBytes after trailing commit + prune
  size_t peak_memory = 0;
  uint64_t compaction_runs = 0;
  uint64_t compaction_bytes = 0;
  uint64_t pin_mismatches = 0;
  double wall_seconds = 0;
};

SoakResult RunSoak(bool compact, int txns, int gc_every, int compact_every) {
  SoakGraph s = MakeSoakGraph();
  Graph& g = *s.graph;
  SoakResult r;

  CompactionOptions copts;  // production trigger, not force
  copts.trigger_frag_pct = 0.30;

  // Pinned mid-storm reader state: reference neighbor lists captured at
  // the pin, re-verified after every compaction pass it spans.
  SnapshotHandle pin;
  Version pin_version = 0;
  std::vector<std::vector<std::pair<VertexId, int64_t>>> pin_expected;
  const int pin_at = txns / 4;
  const int release_at = (3 * txns) / 4;

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    VertexId a = s.all[i % kHotVertices];
    VertexId b = s.all[(i + 1) % kHotVertices];
    auto start = std::chrono::steady_clock::now();
    auto txn = g.BeginWrite({a, b});
    txn->SetProperty(a, s.val, Value::Int(i));
    txn->AddEdge(s.link, a, b, i).ok();
    txn->Commit();
    r.update.Add(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count());

    if (i == pin_at) {
      pin = g.PinSnapshot();
      pin_version = pin.version();
      for (int k = 0; k < kHotVertices; ++k) {
        pin_expected.push_back(
            EdgePairs(g, s.link_out, s.all[k], pin_version));
      }
    }

    // Read probe every 64 txns: 8 hot fetches (segment/overlay mix,
    // informational) timed separately from 8 cold fetches (the gated
    // common case the swap must not hurt).
    if (i % 64 == 0) {
      Version v = g.CurrentVersion();
      uint64_t sink = 0;
      AdjScratch adj;
      auto hstart = std::chrono::steady_clock::now();
      for (int k = 0; k < 8; ++k) {
        VertexId probe = s.all[(i + k * 7) % kHotVertices];
        AdjSpan span = g.Neighbors(s.link_out, probe, v, &adj);
        for (uint32_t j = 0; j < span.size; ++j) sink += span.ids[j];
      }
      auto cstart = std::chrono::steady_clock::now();
      for (int k = 0; k < 8; ++k) {
        VertexId probe =
            s.all[kHotVertices + (i * 31 + k * 997) %
                                     (kVertices - kHotVertices)];
        AdjSpan span = g.Neighbors(s.link_out, probe, v, &adj);
        for (uint32_t j = 0; j < span.size; ++j) sink += span.ids[j];
        sink += static_cast<uint64_t>(g.GetProperty(probe, s.val, v).AsInt());
      }
      auto rend = std::chrono::steady_clock::now();
      if (sink == 0xdeadbeef) std::printf("#");  // keep the loop live
      r.read_hot.Add(
          std::chrono::duration<double, std::milli>(cstart - hstart).count());
      r.read.Add(
          std::chrono::duration<double, std::milli>(rend - cstart).count());
    }

    if (compact && i % compact_every == compact_every - 1) {
      g.CompactRelations(copts);
      if (pin.valid()) {
        // Byte-identity across the swap: the pinned snapshot must decode
        // exactly the lists captured before any segment existed.
        for (int k = 0; k < kHotVertices; ++k) {
          if (EdgePairs(g, s.link_out, s.all[k], pin_version) !=
              pin_expected[static_cast<size_t>(k)]) {
            ++r.pin_mismatches;
          }
        }
      }
    }
    if (i == release_at && pin.valid()) pin.Release();
    if (i % gc_every == gc_every - 1) {
      g.PruneVersions();
      r.peak_memory = std::max(r.peak_memory, g.MemoryBytes());
    }
  }
  // Trailing commit pushes the watermark strictly past the last install
  // version so the final prune drains the retire list.
  {
    auto txn = g.BeginWrite({s.all[0], s.all[1]});
    txn->AddEdge(s.link, s.all[0], s.all[1], txns).ok();
    txn->Commit();
  }
  if (compact) g.CompactRelations(copts);
  g.PruneVersions();
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  r.final_memory = g.MemoryBytes();
  r.peak_memory = std::max(r.peak_memory, r.final_memory);
  r.compaction_runs = g.compaction_runs_total();
  r.compaction_bytes = g.compaction_bytes_reclaimed_total();
  return r;
}

int Main(int argc, char** argv) {
  const int txns = EnvInt("GES_TXNS", 60000);
  const int gc_every = EnvInt("GES_GC_EVERY", 2000);
  const int compact_every = EnvInt("GES_COMPACT_EVERY", 5000);
  const double mem_gate = EnvDouble("GES_COMPACT_MEM_GATE", 0.30);
  const double p99_slack = EnvDouble("GES_COMPACT_P99_SLACK", 1.5);

  BenchJsonReport json("compaction");
  json.AddScalar("txns", txns);
  json.AddScalar("gc_every", gc_every);
  json.AddScalar("compact_every", compact_every);
  json.AddScalar("vertices", kVertices);
  json.AddScalar("hot_vertices", kHotVertices);

  struct Cfg {
    const char* name;
    bool compact;
  };
  const std::vector<Cfg> cfgs = {{"compact_off", false},
                                 {"compact_on", true}};

  TextTable table({"config", "mem final MB", "mem peak MB", "passes",
                   "update p50 us", "cold p99 us", "hot p99 us", "txns/s"});
  SoakResult results[2];
  for (size_t c = 0; c < cfgs.size(); ++c) {
    std::printf("# %s: %d update txns (gc_every=%d, compact_every=%d)...\n",
                cfgs[c].name, txns, gc_every, compact_every);
    std::fflush(stdout);
    SoakResult r = RunSoak(cfgs[c].compact, txns, gc_every, compact_every);

    auto mb = [](size_t b) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", b / (1024.0 * 1024.0));
      return std::string(buf);
    };
    auto us = [](double ms) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", ms * 1000.0);
      return std::string(buf);
    };
    char passes[32], tput[32];
    std::snprintf(passes, sizeof(passes), "%llu",
                  static_cast<unsigned long long>(r.compaction_runs));
    std::snprintf(tput, sizeof(tput), "%.0f",
                  r.wall_seconds > 0 ? txns / r.wall_seconds : 0.0);
    table.AddRow({cfgs[c].name, mb(r.final_memory), mb(r.peak_memory),
                  passes, us(r.update.Percentile(50)),
                  us(r.read.Percentile(99)),
                  us(r.read_hot.Percentile(99)), tput});

    json.AddSectionScalar(cfgs[c].name, "memory_final_bytes",
                          static_cast<double>(r.final_memory));
    json.AddSectionScalar(cfgs[c].name, "memory_peak_bytes",
                          static_cast<double>(r.peak_memory));
    json.AddSectionScalar(cfgs[c].name, "compaction_runs",
                          static_cast<double>(r.compaction_runs));
    json.AddSectionScalar(cfgs[c].name, "compaction_bytes_reclaimed",
                          static_cast<double>(r.compaction_bytes));
    json.AddSectionScalar(cfgs[c].name, "pin_mismatches",
                          static_cast<double>(r.pin_mismatches));
    json.AddSectionScalar(cfgs[c].name, "update_p50_us",
                          r.update.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfgs[c].name, "cold_read_p50_us",
                          r.read.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfgs[c].name, "cold_read_p99_us",
                          r.read.Percentile(99) * 1000.0);
    json.AddSectionScalar(cfgs[c].name, "hot_read_p50_us",
                          r.read_hot.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfgs[c].name, "hot_read_p99_us",
                          r.read_hot.Percentile(99) * 1000.0);
    json.AddSectionScalar(cfgs[c].name, "txns_per_sec",
                          r.wall_seconds > 0 ? txns / r.wall_seconds : 0.0);
    results[c] = std::move(r);
  }
  table.Print();

  const SoakResult& off = results[0];
  const SoakResult& on = results[1];
  double reduction =
      off.final_memory > 0
          ? 1.0 - static_cast<double>(on.final_memory) / off.final_memory
          : 0.0;
  double p99_off = off.read.Percentile(99);
  double p99_on = on.read.Percentile(99);
  std::printf("# compaction: %.1f%% memory reduction (gate: >= %.0f%%), "
              "cold read p99 %.2f us vs %.2f us (gate: <= %.1fx), "
              "hot read p99 %.2f us vs %.2f us (informational), "
              "%llu pin mismatches\n",
              100.0 * reduction, 100.0 * mem_gate, p99_on * 1000.0,
              p99_off * 1000.0, p99_slack,
              on.read_hot.Percentile(99) * 1000.0,
              off.read_hot.Percentile(99) * 1000.0,
              static_cast<unsigned long long>(on.pin_mismatches));
  json.AddScalar("memory_reduction_pct", 100.0 * reduction);
  json.AddScalar("mem_gate_pct", 100.0 * mem_gate);
  json.AddScalar("p99_slack", p99_slack);
  MaybeWriteJson(argc, argv, json);

  if (on.compaction_runs == 0) {
    std::fprintf(stderr, "FAIL: compact_on never ran a compaction pass\n");
    return 1;
  }
  if (on.pin_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu pinned-reader mismatches across swaps\n",
                 static_cast<unsigned long long>(on.pin_mismatches));
    return 1;
  }
  if (reduction < mem_gate) {
    std::fprintf(stderr,
                 "FAIL: memory reduction %.1f%% below the %.0f%% gate\n",
                 100.0 * reduction, 100.0 * mem_gate);
    return 1;
  }
  if (p99_on > p99_off * p99_slack) {
    std::fprintf(stderr,
                 "FAIL: cold read p99 %.2f us above %.2fx of compact_off "
                 "(%.2f us)\n",
                 p99_on * 1000.0, p99_slack, p99_off * 1000.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ges::bench

int main(int argc, char** argv) { return ges::bench::Main(argc, argv); }
