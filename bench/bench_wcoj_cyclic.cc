// WCOJ intersection vs binary expansion on the planted-community graph
// (DESIGN.md §12): the experiment behind the cyclic/analytic tier.
//
// For the triangle and diamond censuses, three plan variants run at each
// thread count:
//
//   intersect     kFactorizedFused with the WCOJ rewrite on — the
//                 Expand ; ExpandInto chain becomes one IntersectExpand
//                 emitting factorized extensions (no flattening; COUNT
//                 evaluates on the f-Tree via the tuple-count DP)
//   binary        the same engine with the rewrite ablated
//                 (ExecOptions::intersect_expand = false): ExpandInto
//                 de-factors the whole (a, b, t) product to a flat block
//                 and probes row by row — the pre-WCOJ behaviour
//   binary_flat   the kFlat engine on the binary plan: the fully
//                 materializing row-oriented baseline
//
// Every run is verified against the generator's closed-form count before
// its time is recorded. The analytics kernels (merge-join CountTriangles
// vs leapfrog CountTrianglesIntersect) are timed alongside.
//
// Usage: bench_wcoj_cyclic [--json [path]]
//   env: GES_COMMUNITIES (default 64), GES_CLIQUE (default 16),
//        GES_CHAFF (default 48 pendant leaves per clique vertex — the
//        selective candidates >> survivors regime), GES_ITERS (default 3),
//        GES_THREADS_LIST (default "1,2,4")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytics/algorithms.h"
#include "bench/bench_util.h"
#include "datagen/cyclic_generator.h"
#include "executor/executor.h"
#include "harness/report.h"
#include "harness/stats.h"

namespace ges::bench {
namespace {

Plan CensusPlan(const CyclicData& d, bool diamond) {
  using E = Expr;
  PlanBuilder b(diamond ? "diamond_census" : "triangle_census");
  b.ScanByLabel("a", d.node).Expand("a", "b", {d.rel});
  if (diamond) {
    b.Expand("b", "c", {d.rel})
        .ExpandInto("c", "a", {d.rel}, /*anti=*/false)
        .Expand("b", "d", {d.rel})
        .ExpandInto("d", "a", {d.rel}, /*anti=*/false)
        .Filter(E::Ne(E::Col("c"), E::Col("d")));
  } else {
    b.Expand("b", "t", {d.rel}).ExpandInto("t", "a", {d.rel}, /*anti=*/false);
  }
  b.Aggregate({}, {AggSpec{AggSpec::kCount, "", "cnt"}}).Output({"cnt"});
  return b.Build();
}

int64_t CountOf(const QueryResult& r) {
  return r.table.NumRows() == 1 ? r.table.rows()[0][0].AsInt() : -1;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Times `iters` runs of `plan`, aborting the bench on a wrong count.
LatencyRecorder TimePlan(const Plan& plan, const GraphView& view,
                         ExecMode mode, const ExecOptions& options, int iters,
                         int64_t want, const char* label) {
  LatencyRecorder rec;
  Executor exec(mode, options);
  for (int i = -1; i < iters; ++i) {  // i == -1: untimed warmup
    auto t0 = std::chrono::steady_clock::now();
    QueryResult r = exec.Run(plan, view);
    double ms = MsSince(t0);
    if (CountOf(r) != want) {
      std::fprintf(stderr, "FATAL: %s returned %lld, want %lld\n", label,
                   static_cast<long long>(CountOf(r)),
                   static_cast<long long>(want));
      std::exit(1);
    }
    if (i >= 0) rec.Add(ms);
  }
  return rec;
}

void AddSection(BenchJsonReport* json, const std::string& section,
                const LatencyRecorder& rec) {
  json->AddSectionScalar(section, "mean_ms", rec.Mean());
  json->AddSectionScalar(section, "min_ms", rec.Min());
}

}  // namespace

int Main(int argc, char** argv) {
  CyclicConfig config;
  config.num_communities =
      static_cast<size_t>(EnvInt("GES_COMMUNITIES", 64));
  config.community_size = static_cast<size_t>(EnvInt("GES_CLIQUE", 16));
  config.chaff_per_vertex = static_cast<size_t>(EnvInt("GES_CHAFF", 48));
  int iters = EnvInt("GES_ITERS", 3);
  const char* tl = std::getenv("GES_THREADS_LIST");
  std::vector<int> thread_list;
  {
    std::string s = tl == nullptr ? "1,2,4" : tl;
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      thread_list.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
  }

  Graph graph;
  std::printf(
      "# generating planted graph: %zu communities x %zu-clique, %zu chaff "
      "leaves per vertex\n",
      config.num_communities, config.community_size,
      config.chaff_per_vertex);
  CyclicData data = GenerateCyclic(config, &graph);
  GraphView view(&graph);
  std::printf("# closed forms: triangles=%llu diamonds=%llu 4-cycles=%llu\n",
              static_cast<unsigned long long>(data.triangles),
              static_cast<unsigned long long>(data.diamonds),
              static_cast<unsigned long long>(data.four_cycles));

  BenchJsonReport json("wcoj_cyclic");
  json.AddScalar("communities", static_cast<double>(config.num_communities));
  json.AddScalar("clique", static_cast<double>(config.community_size));
  json.AddScalar("chaff_per_vertex",
                 static_cast<double>(config.chaff_per_vertex));
  json.AddScalar("iters", iters);
  json.AddScalar("triangles", static_cast<double>(data.triangles));
  json.AddScalar("diamonds", static_cast<double>(data.diamonds));

  Plan tri = CensusPlan(data, /*diamond=*/false);
  Plan dia = CensusPlan(data, /*diamond=*/true);
  int64_t tri_want = static_cast<int64_t>(6 * data.triangles);
  int64_t dia_want = static_cast<int64_t>(4 * data.diamonds);

  double tri_speedup_t1 = 0;
  for (int threads : thread_list) {
    ExecOptions on;
    on.intra_query_threads = threads;
    ExecOptions off = on;
    off.intersect_expand = false;

    std::string suffix = "_t" + std::to_string(threads);
    struct Variant {
      const char* name;
      ExecMode mode;
      const ExecOptions* options;
    };
    const Variant variants[] = {
        {"intersect", ExecMode::kFactorizedFused, &on},
        {"binary", ExecMode::kFactorizedFused, &off},
        {"binary_flat", ExecMode::kFlat, &off},
    };
    double tri_ms[3] = {0, 0, 0};
    int vi = 0;
    for (const Variant& v : variants) {
      LatencyRecorder t = TimePlan(tri, view, v.mode, *v.options, iters,
                                   tri_want, "triangle census");
      LatencyRecorder d = TimePlan(dia, view, v.mode, *v.options, iters,
                                   dia_want, "diamond census");
      AddSection(&json, std::string("triangle_") + v.name + suffix, t);
      AddSection(&json, std::string("diamond_") + v.name + suffix, d);
      std::printf("# t=%d %-12s triangle %8.2f ms   diamond %8.2f ms\n",
                  threads, v.name, t.Min(), d.Min());
      tri_ms[vi++] = t.Min();
    }
    double speedup = tri_ms[0] > 0 ? tri_ms[1] / tri_ms[0] : 0;
    json.AddSectionScalar("speedup", "triangle_binary_over_intersect" + suffix,
                          speedup);
    json.AddSectionScalar("speedup",
                          "triangle_flat_over_intersect" + suffix,
                          tri_ms[0] > 0 ? tri_ms[2] / tri_ms[0] : 0);
    std::printf("# t=%d triangle speedup: %.1fx vs binary, %.1fx vs flat\n",
                threads, speedup, tri_ms[0] > 0 ? tri_ms[2] / tri_ms[0] : 0);
    if (threads == 1) tri_speedup_t1 = speedup;
  }
  json.AddScalar("triangle_speedup_x", tri_speedup_t1);

  // Analytics kernels: merge-join oracle vs leapfrog intersection.
  {
    LatencyRecorder merge, leap;
    for (int i = 0; i < iters; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      uint64_t n = CountTriangles(view, data.node, data.rel);
      merge.Add(MsSince(t0));
      t0 = std::chrono::steady_clock::now();
      uint64_t m = CountTrianglesIntersect(view, data.node, data.rel);
      leap.Add(MsSince(t0));
      if (n != data.triangles || m != data.triangles) {
        std::fprintf(stderr, "FATAL: analytics count mismatch\n");
        return 1;
      }
    }
    AddSection(&json, "analytics_triangles_merge", merge);
    AddSection(&json, "analytics_triangles_leapfrog", leap);
    std::printf("# analytics: merge %.2f ms, leapfrog %.2f ms\n", merge.Min(),
                leap.Min());
  }

  MaybeWriteJson(argc, argv, json);
  return 0;
}

}  // namespace ges::bench

int main(int argc, char** argv) { return ges::bench::Main(argc, argv); }
