// Figure 11: average latency of each IC query with the flat (GES),
// factorized (GES_f), and fused (GES_f*) engines across graph scales.
//
// Paper shape: GES_f beats GES on every query (up to orders of magnitude on
// IC10/IC14-style traversals); GES_f* further cuts queries where de-factor
// costs dominate; gains grow with graph scale.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 11: average query latency, GES vs GES_f vs GES_f* "
              "==\n");
  int params = EnvInt("GES_PARAMS", 15);
  BenchJsonReport json("fig11_latency_variants");
  json.AddScalar("params", params);
  for (double sf : EnvSfList()) {
    auto g = MakeGraph(sf);
    GraphView view(&g->graph);
    std::printf("\n--- %s ---\n", SfLabel(sf).c_str());
    TextTable table({"query", "GES", "GES_f", "GES_f*", "f speedup",
                     "f* speedup"});
    for (int k = 1; k <= 14; ++k) {
      double avg[3] = {0, 0, 0};
      int m = 0;
      for (ExecMode mode : VariantModes()) {
        Executor exec(mode, ExecOptions{.collect_stats = false});
        ParamGen gen(&g->graph, &g->data, 1100 + k);  // same params per mode
        LatencyRecorder rec;
        for (int i = 0; i < params; ++i) {
          LdbcParams p = gen.Next();
          Timer t;
          exec.Run(BuildIC(k, g->ctx, p), view);
          rec.Add(t.ElapsedMillis());
        }
        json.AddLatency(SfLabel(sf) + "/" + ExecModeName(mode),
                        "IC" + std::to_string(k), rec);
        avg[m++] = rec.Mean();
      }
      char s1[16], s2[16];
      std::snprintf(s1, sizeof(s1), "%.1fx", avg[0] / std::max(avg[1], 1e-9));
      std::snprintf(s2, sizeof(s2), "%.1fx", avg[0] / std::max(avg[2], 1e-9));
      table.AddRow({"IC" + std::to_string(k), HumanMillis(avg[0]),
                    HumanMillis(avg[1]), HumanMillis(avg[2]), s1, s2});
    }
    table.Print();
  }
  std::printf("\nPaper shape check: GES_f >= GES everywhere; largest gains "
              "on the long-running expansion-heavy queries; GES_f* adds "
              "large extra gains where aggregation/top-k previously forced "
              "full de-factoring (e.g. IC5).\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
