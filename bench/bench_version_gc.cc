// MVCC version-chain GC soak (DESIGN.md §11): sustained single-writer
// updates against a small hot set, with interleaved snapshot reads. Shows
// the bug this subsystem fixes and the fix's cost:
//
//   gc_off          chains grow without bound — overlay bytes scale with
//                   the transaction count (the pre-GC behaviour)
//   gc_on           PruneVersions every GES_GC_EVERY txns — overlay bytes
//                   plateau at the inter-prune backlog; read p99 reported
//                   so the prune's reader cost is visible
//   pin_release     the headline scenario: a reader pins the initial
//                   snapshot, updates run (GC blocked by the watermark,
//                   memory grows), the pin is released mid-soak and GC
//                   collapses the backlog — memory plateaus from there on
//
// Usage: bench_version_gc [--json [path]]
//   env: GES_TXNS (default 200000; the paper-scale soak is 1000000),
//        GES_GC_EVERY (default 2000 txns per PruneVersions pass)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "storage/graph.h"

namespace ges::bench {
namespace {

constexpr int kHotVertices = 64;

struct SoakGraph {
  std::unique_ptr<Graph> graph;
  LabelId node;
  LabelId link;
  PropertyId val;
  RelationId link_out;
  std::vector<VertexId> hot;
};

SoakGraph MakeSoakGraph() {
  SoakGraph s;
  s.graph = std::make_unique<Graph>();
  Catalog& c = s.graph->catalog();
  s.node = c.AddVertexLabel("NODE");
  s.link = c.AddEdgeLabel("LINK");
  s.val = c.AddProperty(s.node, "val", ValueType::kInt64);
  s.graph->RegisterRelation(s.node, s.link, s.node, /*has_stamp=*/true);
  for (int i = 0; i < kHotVertices; ++i) {
    VertexId v = s.graph->AddVertexBulk(s.node, i);
    s.graph->SetPropertyBulk(v, s.val, Value::Int(i));
    s.hot.push_back(v);
  }
  for (int i = 0; i < kHotVertices; ++i) {
    s.graph->AddEdgeBulk(s.link, s.hot[i], s.hot[(i + 1) % kHotVertices], i);
  }
  s.graph->FinalizeBulk();
  s.link_out = s.graph->FindRelation(s.node, s.link, s.node, Direction::kOut);
  return s;
}

struct SoakResult {
  LatencyRecorder update;      // per-commit latency (ms)
  LatencyRecorder read;        // per-read-probe latency (ms)
  size_t peak_overlay = 0;     // max OverlayBytes seen at sample points
  size_t final_overlay = 0;    // OverlayBytes after the last prune
  size_t bytes_at_release = 0; // pin_release only: backlog when pin dropped
  uint64_t entries_pruned = 0;
  double wall_seconds = 0;
};

enum class Mode { kGcOff, kGcOn, kPinRelease };

// One update transaction: bump hot[i%N].val and refresh its out-edge — a
// property chain entry and an adjacency chain entry per commit.
SoakResult RunSoak(Mode mode, int txns, int gc_every) {
  SoakGraph s = MakeSoakGraph();
  Graph& g = *s.graph;
  SoakResult r;

  SnapshotHandle pin;
  if (mode == Mode::kPinRelease) pin = g.PinSnapshot();
  const int release_at = txns / 2;

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    VertexId a = s.hot[i % kHotVertices];
    VertexId b = s.hot[(i + 1) % kHotVertices];
    auto start = std::chrono::steady_clock::now();
    auto txn = g.BeginWrite({a, b});
    txn->SetProperty(a, s.val, Value::Int(i));
    txn->AddEdge(s.link, a, b, i).ok();
    txn->Commit();
    r.update.Add(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count());

    // Read probe every 64 txns: adjacency walk + property get at the
    // current version — the reads whose p99 a concurrent prune could hurt.
    if (i % 64 == 0) {
      auto rstart = std::chrono::steady_clock::now();
      Version v = g.CurrentVersion();
      uint64_t sink = 0;
      AdjScratch adj;
      for (int k = 0; k < 8; ++k) {
        VertexId probe = s.hot[(i + k * 7) % kHotVertices];
        AdjSpan span = g.Neighbors(s.link_out, probe, v, &adj);
        for (uint32_t j = 0; j < span.size; ++j) sink += span.ids[j];
        sink += static_cast<uint64_t>(
            g.GetProperty(probe, s.val, v).AsInt());
      }
      if (sink == 0xdeadbeef) std::printf("#");  // keep the loop live
      r.read.Add(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - rstart)
                     .count());
    }

    if (mode == Mode::kPinRelease && i == release_at) {
      r.bytes_at_release = g.OverlayBytes();
      pin.Release();
    }
    if (mode != Mode::kGcOff && i % gc_every == gc_every - 1) {
      GcStats gc = g.PruneVersions();
      r.entries_pruned += gc.entries_pruned;
      r.peak_overlay = std::max(r.peak_overlay, g.OverlayBytes());
    } else if (i % gc_every == gc_every - 1) {
      r.peak_overlay = std::max(r.peak_overlay, g.OverlayBytes());
    }
  }
  if (mode != Mode::kGcOff) {
    GcStats gc = g.PruneVersions();
    r.entries_pruned += gc.entries_pruned;
  }
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  r.final_overlay = g.OverlayBytes();
  r.peak_overlay = std::max(r.peak_overlay, r.final_overlay);
  return r;
}

int Main(int argc, char** argv) {
  const int txns = EnvInt("GES_TXNS", 200000);
  const int gc_every = EnvInt("GES_GC_EVERY", 2000);

  BenchJsonReport json("version_gc");
  json.AddScalar("txns", txns);
  json.AddScalar("gc_every", gc_every);
  json.AddScalar("hot_vertices", kHotVertices);

  struct Cfg {
    const char* name;
    Mode mode;
  };
  const std::vector<Cfg> cfgs = {
      {"gc_off", Mode::kGcOff},
      {"gc_on", Mode::kGcOn},
      {"pin_release", Mode::kPinRelease},
  };

  TextTable table({"config", "overlay peak MB", "overlay final MB",
                   "pruned", "update p50 us", "read p99 us", "txns/s"});
  size_t off_final = 0, on_final = 0;
  for (const Cfg& cfg : cfgs) {
    std::printf("# %s: %d update txns (gc_every=%d)...\n", cfg.name, txns,
                gc_every);
    std::fflush(stdout);
    SoakResult r = RunSoak(cfg.mode, txns, gc_every);
    if (std::string(cfg.name) == "gc_off") off_final = r.final_overlay;
    if (std::string(cfg.name) == "gc_on") on_final = r.final_overlay;

    auto mb = [](size_t b) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", b / (1024.0 * 1024.0));
      return std::string(buf);
    };
    auto us = [](double ms) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", ms * 1000.0);
      return std::string(buf);
    };
    char pruned[32], tput[32];
    std::snprintf(pruned, sizeof(pruned), "%llu",
                  static_cast<unsigned long long>(r.entries_pruned));
    std::snprintf(tput, sizeof(tput), "%.0f",
                  r.wall_seconds > 0 ? txns / r.wall_seconds : 0.0);
    table.AddRow({cfg.name, mb(r.peak_overlay), mb(r.final_overlay), pruned,
                  us(r.update.Percentile(50)), us(r.read.Percentile(99)),
                  tput});

    json.AddSectionScalar(cfg.name, "overlay_peak_bytes",
                          static_cast<double>(r.peak_overlay));
    json.AddSectionScalar(cfg.name, "overlay_final_bytes",
                          static_cast<double>(r.final_overlay));
    json.AddSectionScalar(cfg.name, "entries_pruned",
                          static_cast<double>(r.entries_pruned));
    json.AddSectionScalar(cfg.name, "update_p50_us",
                          r.update.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfg.name, "update_p99_us",
                          r.update.Percentile(99) * 1000.0);
    json.AddSectionScalar(cfg.name, "read_p50_us",
                          r.read.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfg.name, "read_p99_us",
                          r.read.Percentile(99) * 1000.0);
    json.AddSectionScalar(cfg.name, "txns_per_sec",
                          r.wall_seconds > 0 ? txns / r.wall_seconds : 0.0);
    if (cfg.mode == Mode::kPinRelease) {
      json.AddSectionScalar(cfg.name, "bytes_at_release",
                            static_cast<double>(r.bytes_at_release));
      std::printf("# pin_release: %.2f MB held at release, %.2f MB after "
                  "the post-release plateau\n",
                  r.bytes_at_release / (1024.0 * 1024.0),
                  r.final_overlay / (1024.0 * 1024.0));
    }
  }
  table.Print();
  if (off_final > 0 && on_final > 0) {
    double shrink = static_cast<double>(off_final) / on_final;
    std::printf("# steady-state overlay: gc_off holds %.0fx the bytes of "
                "gc_on\n",
                shrink);
    json.AddScalar("gc_off_over_gc_on_bytes_x", shrink);
  }

  MaybeWriteJson(argc, argv, json);
  return 0;
}

}  // namespace
}  // namespace ges::bench

int main(int argc, char** argv) { return ges::bench::Main(argc, argv); }
