// Shared setup for the experiment benches.
//
// Scale factors: the paper runs SF10..SF300 on a 96-vCPU cloud box; the
// benches default to laptop-scale stand-ins (overridable via environment):
//
//   GES_SF        — single scale factor (default 0.05)
//   GES_SF_LIST   — comma-separated list for multi-scale experiments
//                   (default "0.01,0.03,0.1,0.3", standing in for the
//                   paper's SF10/SF30/SF100/SF300)
//   GES_PARAMS    — parameter draws per query (default 20)
//   GES_SECONDS   — duration for timed runs
#ifndef GES_BENCH_BENCH_UTIL_H_
#define GES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datagen/snb_generator.h"
#include "executor/executor.h"
#include "harness/driver.h"
#include "harness/report.h"
#include "queries/ldbc.h"

namespace ges::bench {

struct BenchGraph {
  Graph graph;
  SnbData data;
  LdbcContext ctx;
};

inline std::unique_ptr<BenchGraph> MakeGraph(double sf, uint64_t seed = 42) {
  auto g = std::make_unique<BenchGraph>();
  SnbConfig config;
  config.scale_factor = sf;
  config.seed = seed;
  std::printf("# generating SNB graph: SF=%.3g (%zu persons)...\n", sf,
              SnbPersonCount(sf));
  std::fflush(stdout);
  g->data = GenerateSnb(config, &g->graph);
  g->ctx = LdbcContext::Resolve(g->graph, g->data.schema);
  std::printf("# graph ready: %zu vertices, %zu edges, %s\n",
              g->graph.NumVerticesTotal(), g->graph.NumEdgesTotal(),
              HumanBytes(g->graph.MemoryBytes()).c_str());
  std::fflush(stdout);
  return g;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

inline std::vector<double> EnvSfList() {
  const char* v = std::getenv("GES_SF_LIST");
  std::string s = v == nullptr ? "0.01,0.03,0.1,0.3" : v;
  std::vector<double> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

// Paper-scale labels for the default SF list, for readable output.
inline std::string SfLabel(double sf) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "SF%.3g", sf);
  return buf;
}

inline const std::vector<ExecMode>& VariantModes() {
  static const auto& modes = *new std::vector<ExecMode>{
      ExecMode::kFlat, ExecMode::kFactorized, ExecMode::kFactorizedFused};
  return modes;
}

// --- machine-readable output (the shared --json flag) ---------------------

// Folds a DriverReport into one JSON section: throughput plus per-query
// latency stats.
inline void AddDriverReport(BenchJsonReport* json, const std::string& section,
                            const DriverReport& report) {
  json->AddSectionScalar(section, "throughput_qps", report.throughput);
  json->AddSectionScalar(section, "completed",
                         static_cast<double>(report.completed));
  json->AddSectionScalar(section, "elapsed_seconds", report.elapsed_seconds);
  for (const auto& [name, rec] : report.per_query) {
    json->AddLatency(section, name, rec);
  }
}

// Writes the report when the binary was invoked with "--json [path]".
inline void MaybeWriteJson(int argc, char** argv,
                           const BenchJsonReport& report) {
  std::string path = JsonPathFromArgs(argc, argv, report.name());
  if (path.empty()) return;
  if (report.WriteFile(path)) {
    std::printf("# wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "# failed to write %s\n", path.c_str());
  }
}

}  // namespace ges::bench

#endif  // GES_BENCH_BENCH_UTIL_H_
