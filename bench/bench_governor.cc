// Resource governor acceptance (DESIGN.md §15): a short-read client runs
// twice against the same governed server — once alone (the baseline), once
// next to a memory-hog mix (an in-budget hog plus a hog that always blows
// the per-query limit). Gates:
//
//   1. every over-budget hog dies with RESOURCE_EXHAUSTED and the budget
//      detail — never a crash, never an OK;
//   2. governor_peak_global_bytes stays under the watermark (the process
//      plateaus — runaways are contained, not absorbed);
//   3. zero client-visible errors across both phases;
//   4. short-read p99 under the mix within GES_GOVERNOR_GATE (default 2x)
//      of the no-hog baseline, with a small absolute slack floor so a
//      sub-millisecond baseline does not turn scheduler jitter into a
//      failure.
//
// Knobs: GES_SF (0.01), GES_GOVERNOR_WORKERS (4), GES_GOVERNOR_SECONDS
// (3 per phase), GES_GOVERNOR_LIMIT_MB (64), GES_GOVERNOR_WATERMARK_MB
// (128), GES_GOVERNOR_GATE (2.0), GES_GOVERNOR_SLACK_MS (50).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/server.h"

using namespace ges;
using namespace ges::bench;

namespace {

struct HogTally {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> killed{0};    // RESOURCE_EXHAUSTED with the detail
  std::atomic<uint64_t> shed{0};      // OVERLOADED at the watermark
  std::atomic<uint64_t> unexpected{0};
  std::atomic<uint64_t> errors{0};    // transport failures
};

// Loops `mib`-MiB hogs until `stop`; every response must be one of the
// governed outcomes.
void HogLoop(uint16_t port, uint64_t mib, uint8_t hold_ms,
             std::atomic<bool>* stop, HogTally* tally) {
  service::Client c;
  if (!c.Connect("127.0.0.1", port)) {
    tally->errors.fetch_add(1);
    return;
  }
  while (!stop->load(std::memory_order_acquire)) {
    service::QueryResponse resp;
    if (!c.RunHog(mib, &resp, /*deadline_ms=*/0, hold_ms)) {
      tally->errors.fetch_add(1);
      return;
    }
    switch (resp.status) {
      case service::WireStatus::kOk:
        tally->ok.fetch_add(1);
        break;
      case service::WireStatus::kResourceExhausted:
        if (resp.message.find("memory budget exceeded") != std::string::npos) {
          tally->killed.fetch_add(1);
        } else {
          tally->unexpected.fetch_add(1);
        }
        break;
      case service::WireStatus::kOverloaded:
        tally->shed.fetch_add(1);
        break;
      default:
        tally->unexpected.fetch_add(1);
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// The measured workload: IS-class short reads for `seconds`.
bool ShortReadLoop(uint16_t port, BenchGraph* g, double seconds,
                   LatencyRecorder* lat, uint64_t* errors) {
  service::Client c;
  if (!c.Connect("127.0.0.1", port)) {
    ++*errors;
    return false;
  }
  ParamGen gen(&g->graph, &g->data, /*seed=*/99);
  Timer wall;
  while (wall.ElapsedSeconds() < seconds) {
    service::QueryResponse resp;
    Timer t;
    if (!c.RunIS(2, gen.Next(), &resp)) {
      ++*errors;
      return false;
    }
    if (resp.status != service::WireStatus::kOk) {
      std::fprintf(stderr, "short read governed: %s: %s\n",
                   service::WireStatusName(resp.status),
                   resp.message.c_str());
      ++*errors;
      continue;
    }
    lat->Add(t.ElapsedMillis());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Resource governor: hog mix vs short-read baseline ==\n");
  double sf = EnvDouble("GES_SF", 0.01);
  int workers = EnvInt("GES_GOVERNOR_WORKERS", 4);
  double seconds = EnvDouble("GES_GOVERNOR_SECONDS", 3.0);
  int limit_mb = EnvInt("GES_GOVERNOR_LIMIT_MB", 64);
  int watermark_mb = EnvInt("GES_GOVERNOR_WATERMARK_MB", 128);
  double gate = EnvDouble("GES_GOVERNOR_GATE", 2.0);
  double slack_ms = EnvDouble("GES_GOVERNOR_SLACK_MS", 50.0);

  auto g = MakeGraph(sf);

  service::ServiceConfig sc;
  sc.query_workers = workers;
  sc.query_memory_limit_bytes = static_cast<size_t>(limit_mb) << 20;
  sc.memory_watermark_bytes = static_cast<size_t>(watermark_mb) << 20;
  service::Server server(&g->graph, &g->data, sc);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  BenchJsonReport json("governor");
  json.AddScalar("sf", sf);
  json.AddScalar("query_workers", workers);
  json.AddScalar("seconds_per_phase", seconds);
  json.AddScalar("query_memory_limit_mb", limit_mb);
  json.AddScalar("memory_watermark_mb", watermark_mb);

  // Phase 1: shorts alone — the latency baseline.
  LatencyRecorder base_lat;
  uint64_t base_errors = 0;
  ShortReadLoop(server.port(), g.get(), seconds, &base_lat, &base_errors);

  // Phase 2: same shorts next to the hog mix. The tame hog stays inside
  // the per-query limit; the greedy hog asks for 1.5x the limit and must
  // be killed at a checkpoint every single time.
  std::atomic<bool> stop{false};
  HogTally tame, greedy;
  std::thread tame_thread(HogLoop, server.port(),
                          static_cast<uint64_t>(limit_mb) / 2,
                          /*hold_ms=*/30, &stop, &tame);
  std::thread greedy_thread(HogLoop, server.port(),
                            static_cast<uint64_t>(limit_mb) * 3 / 2,
                            /*hold_ms=*/0, &stop, &greedy);
  LatencyRecorder hog_lat;
  uint64_t hog_errors = 0;
  ShortReadLoop(server.port(), g.get(), seconds, &hog_lat, &hog_errors);
  stop.store(true, std::memory_order_release);
  tame_thread.join();
  greedy_thread.join();

  uint64_t peak_global = server.stats().governor_peak_global_bytes.load();
  uint64_t governor_killed = server.stats().governor_killed.load();
  uint64_t governor_shed = server.stats().governor_shed.load();
  server.Drain(2.0);

  double base_p99 = base_lat.Percentile(99);
  double hog_p99 = hog_lat.Percentile(99);
  double bound = gate * base_p99 + slack_ms;

  TextTable table({"phase", "reads", "p50", "p99", "hogs ok", "hogs killed"});
  char buf[3][32];
  std::snprintf(buf[0], sizeof(buf[0]), "%llu",
                static_cast<unsigned long long>(base_lat.count()));
  table.AddRow({"no_hog", buf[0], HumanMillis(base_lat.Percentile(50)),
                HumanMillis(base_p99), "-", "-"});
  std::snprintf(buf[0], sizeof(buf[0]), "%llu",
                static_cast<unsigned long long>(hog_lat.count()));
  std::snprintf(buf[1], sizeof(buf[1]), "%llu",
                static_cast<unsigned long long>(tame.ok.load()));
  std::snprintf(buf[2], sizeof(buf[2]), "%llu",
                static_cast<unsigned long long>(greedy.killed.load()));
  table.AddRow({"hog_mix", buf[0], HumanMillis(hog_lat.Percentile(50)),
                HumanMillis(hog_p99), buf[1], buf[2]});
  table.Print();

  json.AddSectionScalar("no_hog", "errors", static_cast<double>(base_errors));
  json.AddLatency("no_hog", "short_reads", base_lat);
  json.AddSectionScalar("hog_mix", "errors", static_cast<double>(hog_errors));
  json.AddSectionScalar("hog_mix", "tame_ok",
                        static_cast<double>(tame.ok.load()));
  json.AddSectionScalar("hog_mix", "tame_shed",
                        static_cast<double>(tame.shed.load()));
  json.AddSectionScalar("hog_mix", "greedy_killed",
                        static_cast<double>(greedy.killed.load()));
  json.AddSectionScalar("hog_mix", "greedy_ok",
                        static_cast<double>(greedy.ok.load()));
  json.AddLatency("hog_mix", "short_reads", hog_lat);
  json.AddScalar("governor_killed", static_cast<double>(governor_killed));
  json.AddScalar("governor_shed", static_cast<double>(governor_shed));
  json.AddScalar("peak_global_bytes", static_cast<double>(peak_global));
  json.AddScalar("p99_ratio", base_p99 > 0 ? hog_p99 / base_p99 : 0);
  json.AddScalar("gate", gate);

  std::printf("\npeak global %.1f MiB (watermark %d MiB); "
              "greedy hogs killed=%llu ok=%llu; short p99 %.3fms vs %.3fms "
              "baseline (bound %.3fms)\n",
              static_cast<double>(peak_global) / (1 << 20), watermark_mb,
              static_cast<unsigned long long>(greedy.killed.load()),
              static_cast<unsigned long long>(greedy.ok.load()),
              hog_p99, base_p99, bound);

  MaybeWriteJson(argc, argv, json);

  uint64_t errors = base_errors + hog_errors + tame.errors.load() +
                    greedy.errors.load() + tame.unexpected.load() +
                    greedy.unexpected.load();
  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %llu errors/unexpected statuses\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (greedy.killed.load() == 0 || greedy.ok.load() > 0) {
    std::fprintf(stderr,
                 "FAIL: over-budget hogs must always die with "
                 "RESOURCE_EXHAUSTED (killed=%llu ok=%llu)\n",
                 static_cast<unsigned long long>(greedy.killed.load()),
                 static_cast<unsigned long long>(greedy.ok.load()));
    return 1;
  }
  if (peak_global >= sc.memory_watermark_bytes) {
    std::fprintf(stderr,
                 "FAIL: peak global %.1f MiB reached the %d MiB watermark\n",
                 static_cast<double>(peak_global) / (1 << 20), watermark_mb);
    return 1;
  }
  if (hog_p99 > bound) {
    std::fprintf(stderr,
                 "FAIL: short-read p99 %.3fms under the mix exceeds "
                 "%.2fx baseline + %.0fms = %.3fms\n",
                 hog_p99, gate, slack_ms, bound);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
