// Table 2: peak intermediate-result size of each IC query under the three
// engine variants, plus the reduction ratio of GES_f* vs GES.
//
// Paper shape: reductions above 90% for the factorization-friendly queries
// (IC1/IC2/IC5/IC9/IC14); near-zero for cyclic queries (IC3/IC10/IC13).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Table 2: peak intermediate-result memory per query ==\n");
  int params = EnvInt("GES_PARAMS", 10);
  BenchJsonReport json("table2_memory");
  json.AddScalar("params", params);
  for (double sf : EnvSfList()) {
    auto g = MakeGraph(sf);
    GraphView view(&g->graph);
    std::printf("\n--- %s ---\n", SfLabel(sf).c_str());
    TextTable table({"query", "GES", "GES_f", "GES_f*", "R.R."});
    for (int k = 1; k <= 14; ++k) {
      if (k == 13) {
        // IC13 is a traversal stored procedure; its intermediate state is
        // not factorizable and, as in the paper, not counted.
        table.AddRow({"IC13", "n/a", "n/a", "n/a", "0.0%"});
        continue;
      }
      size_t peak[3] = {0, 0, 0};
      int m = 0;
      for (ExecMode mode : VariantModes()) {
        Executor exec(mode);
        ParamGen gen(&g->graph, &g->data, 1300 + k);
        for (int i = 0; i < params; ++i) {
          LdbcParams p = gen.Next();
          QueryResult r = exec.Run(BuildIC(k, g->ctx, p), view);
          peak[m] = std::max(peak[m], r.stats.peak_intermediate_bytes);
        }
        ++m;
      }
      for (int i = 0; i < 3; ++i) {
        json.AddSectionScalar(
            SfLabel(sf) + "/" + ExecModeName(VariantModes()[i]) + "_bytes",
            "IC" + std::to_string(k), static_cast<double>(peak[i]));
      }
      char rr[16];
      double ratio =
          peak[0] == 0
              ? 0
              : 100.0 * (1.0 - static_cast<double>(peak[2]) /
                                   static_cast<double>(peak[0]));
      std::snprintf(rr, sizeof(rr), "%.1f%%", ratio);
      table.AddRow({"IC" + std::to_string(k), HumanBytes(peak[0]),
                    HumanBytes(peak[1]), HumanBytes(peak[2]), rr});
    }
    table.Print();
  }
  std::printf("\nPaper shape check: R.R. > 90%% on factorization-friendly "
              "queries (IC1, IC2, IC5, IC9, IC14); near 0%% on the cyclic "
              "ones (IC3, IC10) that revert to flat execution.\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
