// Read scale-out across a replicated topology: 1 node (primary only) vs
// 3 nodes (primary + 2 replicas bootstrapped over the real WAL-shipping
// path), same machine, same client count.
//
// The measured workload is kSleep — a service-time-bound no-op that holds
// a query worker for a fixed interval. On a single-core CI box CPU-bound
// reads cannot scale past 1x no matter how many processes serve them, so
// scaling the CPU work would measure the core count, not the routing; the
// sleep workload instead measures exactly what replication adds: three
// independent worker pools behind one replica-aware client. The gate is
// qps(3 nodes) / qps(1 node) >= GES_REPL_GATE (default 2.4).
//
// A secondary, ungated section runs real IS reads through the same router
// for a sanity trace of the CPU-bound path (expect ~1x on one core).
//
// Knobs: GES_SF (0.01), GES_REPL_WORKERS (2 per server),
//        GES_REPL_SLEEP_MS (2), GES_REPL_OPS (250 per thread),
//        GES_REPL_THREADS (3 * workers), GES_REPL_GATE (2.4).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "replication/replica.h"
#include "replication/routed_client.h"
#include "service/server.h"

using namespace ges;
using namespace ges::bench;

namespace {

using replication::Endpoint;
using replication::Replica;
using replication::RoutedClient;

struct RunResult {
  double qps = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
};

// Closed loop: `threads` RoutedClients issue `ops` kSleep reads each,
// round-robin across `read_nodes` (the primary is always the fallback).
RunResult RunClosedLoop(const Endpoint& primary,
                        const std::vector<Endpoint>& read_nodes, int threads,
                        int ops, int sleep_ms) {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      RoutedClient::Options opts;
      opts.primary = primary;
      opts.replicas = read_nodes;
      RoutedClient router(opts);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      service::QueryResponse resp;
      for (int i = 0; i < ops; ++i) {
        if (router.RunSleep(static_cast<uint64_t>(sleep_ms), &resp) &&
            resp.status == service::WireStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      (void)t;
    });
  }
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.ok = ok.load();
  r.failed = failed.load();
  r.qps = elapsed > 0 ? static_cast<double>(r.ok) / elapsed : 0;
  return r;
}

// Same loop shape over real IS reads (CPU-bound; ungated).
RunResult RunIsLoop(const Endpoint& primary,
                    const std::vector<Endpoint>& read_nodes, int threads,
                    int ops, ParamGen* params) {
  std::vector<LdbcParams> draws;
  draws.reserve(64);
  for (int i = 0; i < 64; ++i) draws.push_back(params->Next());
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      RoutedClient::Options opts;
      opts.primary = primary;
      opts.replicas = read_nodes;
      RoutedClient router(opts);
      service::QueryResponse resp;
      for (int i = 0; i < ops; ++i) {
        int number = 1 + ((t + i) % 7);
        const LdbcParams& p = draws[(t * 31 + i) % draws.size()];
        if (router.RunIS(number, p, &resp) &&
            resp.status == service::WireStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  for (auto& th : pool) th.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.ok = ok.load();
  r.failed = failed.load();
  r.qps = elapsed > 0 ? static_cast<double>(r.ok) / elapsed : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Replication read scale-out: 1 node vs 3 nodes ==\n");
  double sf = EnvDouble("GES_SF", 0.01);
  int workers = EnvInt("GES_REPL_WORKERS", 2);
  int sleep_ms = EnvInt("GES_REPL_SLEEP_MS", 2);
  int ops = EnvInt("GES_REPL_OPS", 250);
  int threads = EnvInt("GES_REPL_THREADS", 3 * workers);
  double gate = EnvDouble("GES_REPL_GATE", 2.4);

  auto g = MakeGraph(sf);
  service::ServiceConfig pc;
  pc.query_workers = workers;
  service::Server primary(&g->graph, &g->data, pc);
  std::string error;
  if (!primary.Start(&error)) {
    std::fprintf(stderr, "primary start failed: %s\n", error.c_str());
    return 1;
  }
  Endpoint primary_ep{"127.0.0.1", primary.port()};

  // Replicas bootstrap over the real subscribe/snapshot/WAL path — the
  // bench measures the topology the server ships, not a shortcut copy.
  Replica::Options r1o, r2o;
  r1o.primary_port = primary.port();
  r1o.name = "bench-r1";
  r2o.primary_port = primary.port();
  r2o.name = "bench-r2";
  Replica r1(r1o), r2(r2o);
  if (!r1.Start().ok() || !r2.Start().ok()) {
    std::fprintf(stderr, "replica bootstrap failed: %s %s\n",
                 r1.last_error().c_str(), r2.last_error().c_str());
    return 1;
  }
  SnbData d1 = RebuildSnbData(r1.graph());
  SnbData d2 = RebuildSnbData(r2.graph());
  service::ServiceConfig rc;
  rc.query_workers = workers;
  rc.replica = true;
  service::Server s1(r1.graph(), &d1, rc);
  service::Server s2(r2.graph(), &d2, rc);
  if (!s1.Start(&error) || !s2.Start(&error)) {
    std::fprintf(stderr, "replica server start failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("(%d query workers per node, %d client threads, %d ops each, "
              "%dms service time)\n",
              workers, threads, ops, sleep_ms);

  BenchJsonReport json("replication");
  json.AddScalar("sf", sf);
  json.AddScalar("query_workers", workers);
  json.AddScalar("client_threads", threads);
  json.AddScalar("ops_per_thread", ops);
  json.AddScalar("sleep_ms", sleep_ms);

  TextTable table({"nodes", "tput (q/s)", "ideal (q/s)", "ok", "failed"});
  double ideal_per_node = workers * 1000.0 / sleep_ms;

  RunResult one =
      RunClosedLoop(primary_ep, {primary_ep}, threads, ops, sleep_ms);
  char buf[4][32];
  std::snprintf(buf[0], sizeof(buf[0]), "%.0f", one.qps);
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f", ideal_per_node);
  std::snprintf(buf[2], sizeof(buf[2]), "%llu",
                static_cast<unsigned long long>(one.ok));
  std::snprintf(buf[3], sizeof(buf[3]), "%llu",
                static_cast<unsigned long long>(one.failed));
  table.AddRow({"1", buf[0], buf[1], buf[2], buf[3]});
  json.AddSectionScalar("one_node", "throughput_qps", one.qps);
  json.AddSectionScalar("one_node", "ok", static_cast<double>(one.ok));
  json.AddSectionScalar("one_node", "failed", static_cast<double>(one.failed));

  std::vector<Endpoint> three = {Endpoint{"127.0.0.1", s1.port()},
                                 Endpoint{"127.0.0.1", s2.port()},
                                 primary_ep};
  RunResult trio = RunClosedLoop(primary_ep, three, threads, ops, sleep_ms);
  std::snprintf(buf[0], sizeof(buf[0]), "%.0f", trio.qps);
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f", 3 * ideal_per_node);
  std::snprintf(buf[2], sizeof(buf[2]), "%llu",
                static_cast<unsigned long long>(trio.ok));
  std::snprintf(buf[3], sizeof(buf[3]), "%llu",
                static_cast<unsigned long long>(trio.failed));
  table.AddRow({"3", buf[0], buf[1], buf[2], buf[3]});
  json.AddSectionScalar("three_nodes", "throughput_qps", trio.qps);
  json.AddSectionScalar("three_nodes", "ok", static_cast<double>(trio.ok));
  json.AddSectionScalar("three_nodes", "failed",
                        static_cast<double>(trio.failed));
  json.AddSectionScalar("three_nodes", "replica1_served",
                        static_cast<double>(s1.stats().queries_received.load()));
  json.AddSectionScalar("three_nodes", "replica2_served",
                        static_cast<double>(s2.stats().queries_received.load()));
  table.Print();

  double speedup = one.qps > 0 ? trio.qps / one.qps : 0;
  json.AddScalar("speedup_3_over_1", speedup);
  json.AddScalar("gate", gate);
  std::printf("\n3-node / 1-node read throughput: %.2fx (gate: >= %.2fx)\n",
              speedup, gate);

  // Ungated CPU-bound trace: on a single core this stays near 1x; on a
  // real multi-core box it tracks the sleep-workload scaling.
  ParamGen params(&g->graph, &g->data, /*seed=*/99);
  RunResult is_one = RunIsLoop(primary_ep, {primary_ep}, threads, ops / 2,
                               &params);
  RunResult is_trio = RunIsLoop(primary_ep, three, threads, ops / 2, &params);
  json.AddSectionScalar("is_reads", "one_node_qps", is_one.qps);
  json.AddSectionScalar("is_reads", "three_nodes_qps", is_trio.qps);
  std::printf("IS reads (CPU-bound, ungated): %.0f q/s -> %.0f q/s (%.2fx)\n",
              is_one.qps, is_trio.qps,
              is_one.qps > 0 ? is_trio.qps / is_one.qps : 0);

  MaybeWriteJson(argc, argv, json);

  s1.Drain(2.0);
  s2.Drain(2.0);
  r1.Stop();
  r2.Stop();
  primary.Drain(2.0);

  if (speedup < gate) {
    std::fprintf(stderr, "FAIL: 3-node speedup %.2fx below the %.2fx gate\n",
                 speedup, gate);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
