// WAL commit-latency microbench (DESIGN.md §10): the durability overhead a
// single writer pays per committed transaction, across fsync policies.
//
// Configurations, all committing the same 3-record transaction (create
// vertex + insert edge + set property):
//   in_memory      no WAL at all (the pre-durability baseline)
//   fsync_never    WAL appended, never explicitly synced
//   fsync_interval WAL appended, background group-commit flusher (10 ms)
//   fsync_always   WAL appended + fsync before the commit is acknowledged
//
// Usage: bench_wal_commit [--json [path]]     (env: GES_COMMITS, default 2000)
// Writes BENCH_wal_commit.json with per-config latency stats and the
// fsync=always overhead multiple over the in-memory baseline.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "harness/report.h"
#include "harness/stats.h"
#include "storage/graph.h"

namespace ges::bench {
namespace {

struct WriterGraph {
  std::unique_ptr<Graph> graph;
  LabelId node;
  LabelId link;
  PropertyId val;
  VertexId root;
};

WriterGraph MakeWriterGraph() {
  WriterGraph w;
  w.graph = std::make_unique<Graph>();
  Catalog& c = w.graph->catalog();
  w.node = c.AddVertexLabel("NODE");
  w.link = c.AddEdgeLabel("LINK");
  w.val = c.AddProperty(w.node, "val", ValueType::kInt64);
  w.graph->RegisterRelation(w.node, w.link, w.node);
  w.root = w.graph->AddVertexBulk(w.node, 0);
  w.graph->SetPropertyBulk(w.root, w.val, Value::Int(0));
  w.graph->FinalizeBulk();
  return w;
}

struct Config {
  const char* name;
  bool durable;
  FsyncPolicy policy;
};

LatencyRecorder RunConfig(const Config& cfg, int commits,
                          const std::string& dir) {
  WriterGraph w = MakeWriterGraph();
  if (cfg.durable) {
    std::filesystem::remove_all(dir);
    DurabilityOptions opts;
    opts.wal.fsync_policy = cfg.policy;
    opts.wal.fsync_interval_ms = 10;
    Status s = w.graph->EnableDurability(dir, opts);
    if (!s.ok()) {
      std::fprintf(stderr, "# EnableDurability failed: %s\n",
                   s.message().c_str());
      return {};
    }
  }

  LatencyRecorder lat;
  for (int i = 1; i <= commits; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto txn = w.graph->BeginWrite({w.root});
    VertexId nv = txn->CreateVertex(w.node, i, {{w.val, Value::Int(i)}});
    txn->AddEdge(w.link, w.root, nv).ok();
    txn->SetProperty(w.root, w.val, Value::Int(i));
    Version v = 0;
    if (!txn->Commit(&v).ok()) {
      std::fprintf(stderr, "# commit %d failed under %s\n", i, cfg.name);
      break;
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    lat.Add(ms);
  }
  return lat;
}

int Main(int argc, char** argv) {
  const int commits = EnvInt("GES_COMMITS", 2000);
  const std::string dir = "/tmp/ges_bench_wal_commit";

  const std::vector<Config> configs = {
      {"in_memory", false, FsyncPolicy::kNever},
      {"fsync_never", true, FsyncPolicy::kNever},
      {"fsync_interval", true, FsyncPolicy::kInterval},
      {"fsync_always", true, FsyncPolicy::kAlways},
  };

  BenchJsonReport json("wal_commit");
  json.AddScalar("commits", commits);

  TextTable table({"config", "mean us", "p50 us", "p99 us", "max us"});
  double baseline_mean = 0, always_mean = 0;
  for (const Config& cfg : configs) {
    std::printf("# %s: %d single-writer commits...\n", cfg.name, commits);
    std::fflush(stdout);
    LatencyRecorder lat = RunConfig(cfg, commits, dir);
    if (lat.count() == 0) continue;
    if (std::string(cfg.name) == "in_memory") baseline_mean = lat.Mean();
    if (std::string(cfg.name) == "fsync_always") always_mean = lat.Mean();
    auto us = [](double ms) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", ms * 1000.0);
      return std::string(buf);
    };
    table.AddRow({cfg.name, us(lat.Mean()), us(lat.Percentile(50)),
                  us(lat.Percentile(99)), us(lat.Max())});
    json.AddSectionScalar(cfg.name, "mean_us", lat.Mean() * 1000.0);
    json.AddSectionScalar(cfg.name, "p50_us", lat.Percentile(50) * 1000.0);
    json.AddSectionScalar(cfg.name, "p95_us", lat.Percentile(95) * 1000.0);
    json.AddSectionScalar(cfg.name, "p99_us", lat.Percentile(99) * 1000.0);
    json.AddSectionScalar(cfg.name, "max_us", lat.Max() * 1000.0);
    json.AddSectionScalar(cfg.name, "commits_per_sec",
                          lat.Sum() > 0 ? lat.count() / (lat.Sum() / 1000.0)
                                        : 0);
  }
  table.Print();
  if (baseline_mean > 0 && always_mean > 0) {
    double multiple = always_mean / baseline_mean;
    std::printf("# fsync=always overhead: %.1fx the in-memory commit\n",
                multiple);
    json.AddScalar("fsync_always_overhead_x", multiple);
  }

  MaybeWriteJson(argc, argv, json);
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace ges::bench

int main(int argc, char** argv) { return ges::bench::Main(argc, argv); }
