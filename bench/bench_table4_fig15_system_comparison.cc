// Table 4 + Figure 15: GES_f* versus other systems.
//
// The commercial/OSS competitors of the paper (Neo4j, PostgreSQL, GraphDB,
// AgensGraph, TigerGraph, TuGraph) are unavailable offline; per DESIGN.md
// the conventional-GDBMS architecture they share — flat tuple-at-a-time
// execution — is represented by this repository's Volcano engine, and the
// block-based flat engine stands in for the faster block-oriented systems.
//
// Figure 15: average latency per IC/IS/IU query on two scales.
// Table 4:  overall LDBC-mix throughput per system.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace ges;
using namespace ges::bench;

namespace {

const std::vector<ExecMode>& ComparisonModes() {
  static const auto& modes = *new std::vector<ExecMode>{
      ExecMode::kVolcano, ExecMode::kFlat, ExecMode::kFactorizedFused};
  return modes;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 15 + Table 4: comparison with conventional engine "
              "architectures ==\n");
  std::printf("(Volcano = tuple-at-a-time row engine, proxy for "
              "conventional GDBMS; GES = block-based flat; GES_f* = this "
              "paper)\n");
  auto sfs = EnvSfList();
  std::vector<double> two = {sfs.front(), sfs[sfs.size() / 2]};
  int params = EnvInt("GES_PARAMS", 10);
  double seconds = EnvDouble("GES_SECONDS", 3.0);
  int threads = EnvInt("GES_THREADS", 4);
  BenchJsonReport json("table4_fig15_system_comparison");
  json.AddScalar("params", params);
  json.AddScalar("seconds", seconds);
  json.AddScalar("threads", threads);

  for (double sf : two) {
    auto g = MakeGraph(sf);
    GraphView view(&g->graph);
    std::printf("\n--- Figure 15, %s: average latency per query ---\n",
                SfLabel(sf).c_str());
    TextTable table({"query", "Volcano", "GES", "GES_f*"});
    auto bench_query = [&](const std::string& name, auto build) {
      std::vector<std::string> row{name};
      for (ExecMode mode : ComparisonModes()) {
        Executor exec(mode, ExecOptions{.collect_stats = false});
        ParamGen gen(&g->graph, &g->data, 1500);
        LatencyRecorder rec;
        for (int i = 0; i < params; ++i) {
          LdbcParams p = gen.Next();
          Timer t;
          exec.Run(build(p), view);
          rec.Add(t.ElapsedMillis());
        }
        json.AddLatency(SfLabel(sf) + "/" + ExecModeName(mode), name, rec);
        row.push_back(HumanMillis(rec.Mean()));
      }
      table.AddRow(std::move(row));
    };
    for (int k = 1; k <= 14; ++k) {
      bench_query("IC" + std::to_string(k),
                  [&](const LdbcParams& p) { return BuildIC(k, g->ctx, p); });
    }
    for (int k = 1; k <= 7; ++k) {
      bench_query("IS" + std::to_string(k),
                  [&](const LdbcParams& p) { return BuildIS(k, g->ctx, p); });
    }
    table.Print();

    std::printf("\n--- Table 4, %s: LDBC-mix throughput ---\n",
                SfLabel(sf).c_str());
    TextTable tput_table({"system", "throughput (q/s)"});
    for (ExecMode mode : ComparisonModes()) {
      Driver driver(&g->graph, &g->data);
      DriverConfig config;
      config.mode = mode;
      config.options.collect_stats = false;
      config.threads = threads;
      config.duration_seconds = seconds;
      config.total_ops = 0;  // pure duration run
      DriverReport report = driver.Run(config);
      json.AddSectionScalar(SfLabel(sf) + "/mix_throughput",
                            ExecModeName(mode), report.throughput);
      char t[32];
      std::snprintf(t, sizeof(t), "%.0f", report.throughput);
      tput_table.AddRow({ExecModeName(mode), t});
    }
    tput_table.Print();
  }
  std::printf("\nPaper shape check: GES_f* leads by roughly an order of "
              "magnitude, reproducing Table 4's headline. The two "
              "conventional architectures cluster together here (our flat "
              "engine shares the storage layer, unlike the paper's "
              "competitors, so the Volcano-vs-flat gap compresses; on "
              "long-running IC queries the per-tuple engine is clearly "
              "slower, see the Figure 15 rows above).\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
