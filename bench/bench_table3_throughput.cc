// Table 3: overall LDBC-mix throughput of the three GES variants per scale
// factor, with speedups over the flat baseline.
//
// Paper shape: GES_f ~4-5x over GES; GES_f* ~16-17x, stable across scales.
#include <cstdio>

#include "bench/bench_util.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Table 3: LDBC benchmark throughput of GES variants ==\n");
  double seconds = EnvDouble("GES_SECONDS", 3.0);
  int threads = EnvInt("GES_THREADS", 4);
  BenchJsonReport json("table3_throughput");
  json.AddScalar("seconds", seconds);
  json.AddScalar("threads", threads);
  for (double sf : EnvSfList()) {
    auto g = MakeGraph(sf);
    std::printf("\n--- %s (%d driver threads, %.1fs per variant) ---\n",
                SfLabel(sf).c_str(), threads, seconds);
    TextTable table({"variant", "throughput (q/s)", "speedup"});
    double base = 0;
    for (ExecMode mode : VariantModes()) {
      Driver driver(&g->graph, &g->data);
      DriverConfig config;
      config.mode = mode;
      config.options.collect_stats = false;
      config.threads = threads;
      config.duration_seconds = seconds;
      config.total_ops = 0;  // pure duration run
      DriverReport report = driver.Run(config);
      AddDriverReport(&json, SfLabel(sf) + "/" + ExecModeName(mode), report);
      if (mode == ExecMode::kFlat) base = report.throughput;
      char tput[32], speedup[16];
      std::snprintf(tput, sizeof(tput), "%.0f", report.throughput);
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    report.throughput / std::max(base, 1e-9));
      table.AddRow({ExecModeName(mode), tput, speedup});
    }
    table.Print();
  }
  std::printf("\nPaper shape check: GES_f ~4-5x over GES, GES_f* ~16x+ over "
              "GES, speedups roughly stable across scales.\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
