// Figure 3: operator-level runtime breakdown of the long-running queries
// on the flat executor. The paper finds Expand dominating (~half of total
// runtime), with Select/Project also significant.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 3: operator-level analysis of long-running queries "
              "(flat GES baseline) ==\n");
  double sf = EnvDouble("GES_SF", 0.05);
  int params = EnvInt("GES_PARAMS", 20);
  BenchJsonReport json("fig3_operator_breakdown");
  json.AddScalar("sf", sf);
  json.AddScalar("params", params);
  auto g = MakeGraph(sf);
  GraphView view(&g->graph);
  Executor exec(ExecMode::kFlat);

  const int kLongRunning[] = {2, 5, 6, 9, 12};
  std::map<std::string, double> global;
  double global_total = 0;

  for (int k : kLongRunning) {
    ParamGen gen(&g->graph, &g->data, 300 + k);
    std::map<std::string, double> per_op;
    double total = 0;
    for (int i = 0; i < params; ++i) {
      LdbcParams p = gen.Next();
      QueryResult r = exec.Run(BuildIC(k, g->ctx, p), view);
      for (const OpStats& os : r.stats.ops) {
        // Map operator names onto the paper's categories.
        std::string name = os.op;
        if (name == "GetProperty" || name == "Project") name = "Project";
        if (name == "Filter" || name == "ExpandInto") name = "Select";
        if (name == "OrderBy" || name == "TopK") name = "Sort";
        if (name == "NodeByIdSeek" || name == "ScanByLabel") name = "Seek";
        per_op[name] += os.millis;
        global[name] += os.millis;
        total += os.millis;
        global_total += os.millis;
      }
    }
    std::printf("\nIC%d (total %s):\n", k, HumanMillis(total).c_str());
    TextTable table({"operator", "time", "share"});
    for (const auto& [name, ms] : per_op) {
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.1f%%", 100.0 * ms / total);
      table.AddRow({name, HumanMillis(ms), pct});
    }
    table.Print();
  }

  std::printf("\nAll long-running queries combined:\n");
  TextTable table({"operator", "time", "share"});
  for (const auto& [name, ms] : global) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%", 100.0 * ms / global_total);
    json.AddSectionScalar("operator_millis", name, ms);
    table.AddRow({name, HumanMillis(ms), pct});
  }
  json.AddSectionScalar("operator_millis", "total", global_total);
  table.Print();
  std::printf("\nPaper shape check: Expand should account for roughly half "
              "of total runtime; Select and Project take most of the rest.\n");

  // Ablation: pointer-based join on vs. off. IC5 with the fused engine is
  // the telling case — its aggregation runs directly on the tree, so the
  // tree itself is the peak intermediate and the lazy (ptr,len) blocks cut
  // it dramatically.
  std::printf("\nAblation: pointer-based join on vs. off (GES_f*, IC5):\n");
  for (bool pointer_join : {false, true}) {
    ExecOptions opt;
    opt.pointer_join = pointer_join;
    Executor fact(ExecMode::kFactorizedFused, opt);
    ParamGen gen(&g->graph, &g->data, 555);
    double total = 0;
    size_t peak = 0;
    for (int i = 0; i < params; ++i) {
      LdbcParams p = gen.Next();
      QueryResult r = fact.Run(BuildIC(5, g->ctx, p), view);
      total += r.stats.total_millis;
      peak = std::max(peak, r.stats.peak_intermediate_bytes);
    }
    std::printf("  pointer_join=%s: total %s, peak intermediates %s\n",
                pointer_join ? "on " : "off", HumanMillis(total).c_str(),
                HumanBytes(peak).c_str());
    std::string section =
        pointer_join ? "pointer_join_on" : "pointer_join_off";
    json.AddSectionScalar(section, "total_millis", total);
    json.AddSectionScalar(section, "peak_intermediate_bytes",
                          static_cast<double>(peak));
  }

  // Ablation: vectorized filter kernel on vs. off (GES_f, IC9 date filter).
  std::printf("\nAblation: vectorized filter on vs. off (GES_f, IC9):\n");
  for (bool vectorized : {false, true}) {
    ExecOptions opt;
    opt.vectorized_filter = vectorized;
    opt.collect_stats = false;
    Executor fact(ExecMode::kFactorized, opt);
    ParamGen gen(&g->graph, &g->data, 556);
    Timer t;
    for (int i = 0; i < params; ++i) {
      LdbcParams p = gen.Next();
      fact.Run(BuildIC(9, g->ctx, p), view);
    }
    json.AddSectionScalar(vectorized ? "vectorized_on" : "vectorized_off",
                          "total_millis", t.ElapsedMillis());
    std::printf("  vectorized=%s: total %s\n", vectorized ? "on " : "off",
                HumanMillis(t.ElapsedMillis()).c_str());
  }
  MaybeWriteJson(argc, argv, json);
  return 0;
}
