// Filter-kernel selectivity sweep: interpreted BoundExpr row loop vs the
// compiled vectorized kernels (executor/vector_expr.h) on int and
// dictionary-encoded string columns, across selectivities from 1% to 99%.
//
// Shape to reproduce: the kernel wins at every selectivity, and the gap is
// widest on string equality — the interpreted path decodes and compares
// whole strings per row while the kernel compares uint32 dictionary codes
// (>= 2x required; typically far more).
//
// Env knobs: GES_ROWS (default 200000), GES_ITERS (default 10 — set 1 for
// sanitizer smoke runs).
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_dict.h"
#include "common/timer.h"
#include "executor/expression.h"
#include "executor/vector_expr.h"

using namespace ges;
using namespace ges::bench;

namespace {

constexpr int kSelectivities[] = {1, 5, 10, 25, 50, 75, 90, 99};

// Millis for `iters` passes of the interpreted filter loop (the exact loop
// TryFactFilter runs when kernels are off).
double RunInterpreted(const Expr& e, const Schema& schema,
                      const ValueVector& col, std::vector<uint8_t>* sel,
                      int iters) {
  BoundExpr pred = BoundExpr::Bind(e, schema);
  size_t rows = col.size();
  Timer t;
  for (int it = 0; it < iters; ++it) {
    std::memset(sel->data(), 1, rows);
    for (size_t r = 0; r < rows; ++r) {
      auto getter = [&](int) -> Value { return col.GetValue(r); };
      if (!pred.Eval(getter).AsBool()) (*sel)[r] = 0;
    }
  }
  return t.ElapsedMillis();
}

double RunKernel(const Expr& e, const Schema& schema, const ValueVector& col,
                 std::vector<uint8_t>* sel, int iters) {
  std::vector<const ValueVector*> phys{&col};
  std::unique_ptr<CompiledExpr> kernel =
      CompiledExpr::CompileFilter(e, schema, phys);
  if (kernel == nullptr) {
    std::fprintf(stderr, "predicate failed to compile: %s\n",
                 e.ToString().c_str());
    std::exit(1);
  }
  size_t rows = col.size();
  Timer t;
  for (int it = 0; it < iters; ++it) {
    std::memset(sel->data(), 1, rows);
    kernel->EvalFilter(sel->data(), 0, rows);
  }
  return t.ElapsedMillis();
}

size_t CountSel(const std::vector<uint8_t>& sel) {
  size_t n = 0;
  for (uint8_t b : sel) n += b != 0;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Filter selectivity sweep: interpreted vs compiled kernels "
              "(int compare / dictionary string equality) ==\n");
  size_t rows = static_cast<size_t>(EnvInt("GES_ROWS", 200'000));
  int iters = EnvInt("GES_ITERS", 10);
  std::printf("# rows=%zu iters=%d\n", rows, iters);

  std::mt19937 rng(42);
  std::uniform_int_distribution<int> pct(0, 99);

  // Int column: uniform [0, 100), so `age < s` selects s%.
  Schema int_schema;
  int_schema.Add("age", ValueType::kInt64);
  ValueVector age(ValueType::kInt64);
  age.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) age.AppendInt(pct(rng));

  // String pool for the non-matching rows of the string sweeps.
  const char* kPool[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                         "zeta",  "eta",  "theta", "iota",  "kappa"};
  Schema str_schema;
  str_schema.Add("name", ValueType::kString);

  BenchJsonReport json("filter_selectivity");
  json.AddScalar("rows", static_cast<double>(rows));
  json.AddScalar("iters", iters);
  TextTable table({"sel%", "int interp", "int kernel", "int x", "str interp",
                   "str kernel", "str x"});

  bool speedup_ok = true;
  for (int s : kSelectivities) {
    // Dictionary string column: `name == "hit"` selects ~s%.
    StringDict dict;
    ValueVector name(ValueType::kString);
    name.InitDict(&dict);
    dict.Intern("hit");
    for (const char* p : kPool) dict.Intern(p);
    name.Reserve(rows);
    std::mt19937 col_rng(1000 + s);
    std::uniform_int_distribution<int> roll(0, 99);
    std::uniform_int_distribution<size_t> pick(0, std::size(kPool) - 1);
    for (size_t r = 0; r < rows; ++r) {
      name.AppendString(roll(col_rng) < s ? "hit" : kPool[pick(col_rng)]);
    }

    ExprPtr int_pred =
        Expr::Lt(Expr::Col("age"), Expr::Lit(Value::Int(s)));
    ExprPtr str_pred =
        Expr::Eq(Expr::Col("name"), Expr::Lit(Value::String("hit")));

    std::vector<uint8_t> sel(rows, 1);
    double int_interp = RunInterpreted(*int_pred, int_schema, age, &sel, iters);
    size_t int_hits_interp = CountSel(sel);
    double int_kernel = RunKernel(*int_pred, int_schema, age, &sel, iters);
    if (CountSel(sel) != int_hits_interp) {
      std::fprintf(stderr, "int kernel/interp disagree at s=%d\n", s);
      return 1;
    }
    double str_interp =
        RunInterpreted(*str_pred, str_schema, name, &sel, iters);
    size_t str_hits_interp = CountSel(sel);
    double str_kernel = RunKernel(*str_pred, str_schema, name, &sel, iters);
    if (CountSel(sel) != str_hits_interp) {
      std::fprintf(stderr, "string kernel/interp disagree at s=%d\n", s);
      return 1;
    }

    double ix = int_kernel > 0 ? int_interp / int_kernel : 0;
    double sx = str_kernel > 0 ? str_interp / str_kernel : 0;
    char ixs[32], sxs[32];
    std::snprintf(ixs, sizeof(ixs), "%.1fx", ix);
    std::snprintf(sxs, sizeof(sxs), "%.1fx", sx);
    table.AddRow({std::to_string(s), HumanMillis(int_interp),
                  HumanMillis(int_kernel), ixs, HumanMillis(str_interp),
                  HumanMillis(str_kernel), sxs});

    std::string sec = "s";
    sec += std::to_string(s);
    json.AddSectionScalar(sec, "int_interpreted_ms", int_interp);
    json.AddSectionScalar(sec, "int_kernel_ms", int_kernel);
    json.AddSectionScalar(sec, "int_speedup", ix);
    json.AddSectionScalar(sec, "str_interpreted_ms", str_interp);
    json.AddSectionScalar(sec, "str_kernel_ms", str_kernel);
    json.AddSectionScalar(sec, "str_speedup", sx);
    if (sx < 2.0) speedup_ok = false;
  }
  table.Print();
  std::printf("\nPaper shape check: kernel wins everywhere; string equality "
              "via dictionary codes is the largest gap (>= 2x required: "
              "%s).\n",
              speedup_ok ? "PASS" : "FAIL");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
