// Service-path latency and throughput: queries travel over TCP through the
// admission queue instead of calling the Executor directly.
//
// Grid: {FIFO, prioritized} admission x {closed, open} loop, under a mix
// where short IS reads share the server with IC5/IC9-class long reads.
// The open-loop arrival rate is calibrated to ~80% of the closed-loop FIFO
// throughput, so both policies face the same offered load and queueing
// delay shows up in the percentiles (latency is charged from the scheduled
// arrival — coordinated-omission corrected).
//
// Shape check: with FIFO admission a long query ahead in the queue stalls
// every short query behind it, inflating the short-query tail; prioritized
// admission caps concurrent long queries below the worker count, so the
// short p99 drops while long queries keep most of their throughput.
#include <cstdio>

#include "bench/bench_util.h"
#include "harness/service_load.h"
#include "service/server.h"

using namespace ges;
using namespace ges::bench;

namespace {

const char* PolicyLabel(service::AdmissionPolicy p) {
  return p == service::AdmissionPolicy::kFifo ? "fifo" : "prioritized";
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Service throughput: FIFO vs prioritized admission, "
              "closed vs open loop ==\n");
  double sf = EnvDouble("GES_SF", 0.05);
  int conns = EnvInt("GES_CONNECTIONS", 8);
  int workers = EnvInt("GES_WORKERS", 4);
  uint64_t ops = static_cast<uint64_t>(EnvInt("GES_SERVICE_OPS", 400));
  auto g = MakeGraph(sf);
  ParamGen params(&g->graph, &g->data, /*seed=*/777);

  // Mostly short IS reads, with enough IC5/IC9 in the stream that FIFO
  // regularly parks a long query in front of the shorts.
  std::vector<MixEntry> mix = {
      {{QueryKind::kIS, 1}, 15}, {{QueryKind::kIS, 2}, 15},
      {{QueryKind::kIS, 3}, 15}, {{QueryKind::kIS, 4}, 15},
      {{QueryKind::kIS, 5}, 15}, {{QueryKind::kIS, 7}, 15},
      {{QueryKind::kIC, 5}, 5},  {{QueryKind::kIC, 9}, 5},
  };

  BenchJsonReport json("service");
  json.AddScalar("sf", sf);
  json.AddScalar("connections", conns);
  json.AddScalar("query_workers", workers);
  json.AddScalar("total_ops", static_cast<double>(ops));

  std::printf("(%d connections, %d query workers, %llu ops per cell)\n",
              conns, workers, static_cast<unsigned long long>(ops));
  TextTable table({"policy", "loop", "tput (q/s)", "short p50", "short p99",
                   "long p99", "rejected"});
  double open_rate = 0;
  double fifo_short_p99 = 0, prio_short_p99 = 0;

  for (service::AdmissionPolicy policy :
       {service::AdmissionPolicy::kFifo,
        service::AdmissionPolicy::kPrioritized}) {
    service::ServiceConfig sc;
    sc.query_workers = workers;
    sc.policy = policy;
    sc.queue_capacity = 4096;  // sized for the burst; backpressure is
                               // bench_noise here, not the subject
    service::Server server(&g->graph, &g->data, sc);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }

    for (bool open : {false, true}) {
      ServiceLoadConfig lc;
      lc.port = server.port();
      lc.connections = conns;
      lc.total_ops = ops;
      lc.mix = mix;
      lc.seed = 7;
      if (open) lc.open_loop_rate = open_rate;
      ServiceLoadReport rep = RunServiceLoad(lc, &params);
      if (policy == service::AdmissionPolicy::kFifo && !open) {
        // Calibrate the open-loop offered load off the FIFO closed-loop
        // capacity; both policies then face identical arrivals.
        open_rate = 0.8 * rep.throughput;
      }

      LatencyRecorder shorts = rep.AggregatePrefix("IS");
      LatencyRecorder longs = rep.AggregatePrefix("IC");
      std::string section =
          std::string(PolicyLabel(policy)) + (open ? "_open" : "_closed");
      json.AddSectionScalar(section, "throughput_qps", rep.throughput);
      json.AddSectionScalar(section, "ok", static_cast<double>(rep.ok));
      json.AddSectionScalar(section, "rejected",
                            static_cast<double>(rep.rejected));
      json.AddSectionScalar(section, "interrupted",
                            static_cast<double>(rep.interrupted));
      json.AddSectionScalar(section, "errors",
                            static_cast<double>(rep.errors));
      if (open) json.AddSectionScalar(section, "offered_rate", open_rate);
      json.AddLatency(section, "IS_all", shorts);
      json.AddLatency(section, "IC_all", longs);
      // Server-side per-phase breakdown (parse/plan/bind/execute). The
      // ad-hoc LDBC kinds spend everything in execute; the non-exec
      // phases become meaningful under prepared-statement load (see
      // bench_plan_cache) and are emitted here for schema parity.
      json.AddLatency(section, "phase_parse", rep.phase_parse);
      json.AddLatency(section, "phase_plan", rep.phase_plan);
      json.AddLatency(section, "phase_bind", rep.phase_bind);
      json.AddLatency(section, "phase_exec", rep.phase_exec);
      for (const auto& [name, rec] : rep.per_query) {
        json.AddLatency(section, name, rec);
      }
      if (open) {
        if (policy == service::AdmissionPolicy::kFifo) {
          fifo_short_p99 = shorts.Percentile(99);
        } else {
          prio_short_p99 = shorts.Percentile(99);
        }
      }

      char tput[32], rej[16];
      std::snprintf(tput, sizeof(tput), "%.0f", rep.throughput);
      std::snprintf(rej, sizeof(rej), "%llu",
                    static_cast<unsigned long long>(rep.rejected));
      table.AddRow({PolicyLabel(policy), open ? "open" : "closed", tput,
                    HumanMillis(shorts.Percentile(50)),
                    HumanMillis(shorts.Percentile(99)),
                    HumanMillis(longs.Percentile(99)), rej});
    }
    server.Drain(/*grace_seconds=*/5.0);
  }
  table.Print();

  std::printf("\nopen-loop short p99: fifo %s vs prioritized %s (%s)\n",
              HumanMillis(fifo_short_p99).c_str(),
              HumanMillis(prio_short_p99).c_str(),
              prio_short_p99 < fifo_short_p99 ? "prioritized wins"
                                              : "no win on this run");
  std::printf("\nPaper shape check: under the same open-loop arrivals, "
              "prioritized admission should cut the short-query p99 well "
              "below FIFO while long-query throughput stays comparable "
              "(Fig 2's monopolization problem, solved at admission).\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
