// Figure 2: total and average single-core execution time of each IC query
// (flat GES baseline), highlighting the long-running queries.
//
// Paper observation to reproduce: runtimes vary by orders of magnitude
// across queries; IC5/IC9/IC10/IC14-style traversal-heavy queries dominate.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 2: per-query runtime under the LDBC SNB interactive "
              "workload (single core, flat GES baseline) ==\n");
  double sf = EnvDouble("GES_SF", 0.05);
  int params = EnvInt("GES_PARAMS", 20);
  auto g = MakeGraph(sf);
  GraphView view(&g->graph);
  Executor exec(ExecMode::kFlat, ExecOptions{.collect_stats = false});

  BenchJsonReport json("fig2_query_runtimes");
  json.AddScalar("sf", sf);
  json.AddScalar("params", params);
  TextTable table({"query", "runs", "total", "avg"});
  double grand_total = 0;
  for (int k = 1; k <= 14; ++k) {
    ParamGen gen(&g->graph, &g->data, 900 + k);
    LatencyRecorder rec;
    for (int i = 0; i < params; ++i) {
      LdbcParams p = gen.Next();
      Plan plan = BuildIC(k, g->ctx, p);
      Timer t;
      exec.Run(plan, view);
      rec.Add(t.ElapsedMillis());
    }
    double total_ms = rec.Sum();
    grand_total += total_ms;
    json.AddLatency("flat", "IC" + std::to_string(k), rec);
    table.AddRow({"IC" + std::to_string(k), std::to_string(params),
                  HumanMillis(total_ms), HumanMillis(total_ms / params)});
  }
  table.Print();
  std::printf("total: %s\n", HumanMillis(grand_total).c_str());
  std::printf("\nPaper shape check: a handful of long-running queries "
              "(IC5/IC9-style multi-hop expansions) should dominate, with "
              "100x+ spread between cheapest and costliest.\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
