// Prepared-statement plan cache: the same IS-style short-read mix served
// with the LRU plan cache enabled (default 128 entries) vs disabled
// (--plan-cache-entries 0). With the cache off every kExecute re-parses
// the normalized text, re-runs the optimizer and re-collects column
// statistics; with it on the execution path is bind + run only. The gate
// is p50(cache off) / p50(cache on) >= GES_PLANCACHE_GATE (default 1.3)
// on the short-read classes, plus a post-warmup hit rate >= 99% — the
// read-mostly steady state (RebuildStats skips while the graph version is
// unchanged, so the stats epoch stays put and templates never go stale).
//
// The client pool oversubscribes the query workers (8 connections over 2
// workers by default) so queueing — which scales with server-side per-op
// cost, i.e. with planning — dominates the loopback RTT; an unsaturated
// server would hide most of the planning win behind the network.
//
// Knobs: GES_SF (0.01), GES_PLANCACHE_CONNS (8), GES_PLANCACHE_WORKERS
// (2), GES_PLANCACHE_OPS (2000 per connection), GES_PLANCACHE_WARMUP (50
// per connection), GES_PLANCACHE_GATE (1.3).
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/server.h"

using namespace ges;
using namespace ges::bench;

namespace {

// Short-read templates in the spirit of the IS tier: point profile
// lookups and 1-hop neighborhoods anchored on a person seek. The last
// entry is the "long" component (2-hop) keeping the mix honest.
struct TemplateDef {
  const char* name;
  const char* text;
  bool is_short;
};

const TemplateDef kTemplates[] = {
    {"profile",
     "MATCH (p:PERSON) WHERE id(p) = $0 AND p.birthdayMonth > 0 "
     "RETURN p.firstName, p.lastName, p.gender, p.browserUsed, "
     "p.birthdayMonth, p.creationDate",
     true},
    {"friends",
     "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON) "
     "WHERE id(p) = $0 AND f.birthdayMonth > 0 "
     "RETURN f.id, f.firstName, f.lastName ORDER BY f.id ASC LIMIT 20",
     true},
    {"posts",
     "MATCH (p:PERSON)<-[:HAS_CREATOR]-(m:POST) "
     "WHERE id(p) = $0 AND m.length > 10 "
     "RETURN m.id, m.length, m.browserUsed ORDER BY m.id DESC LIMIT 10",
     true},
    {"friends_of_friends",
     "MATCH (p:PERSON)-[:KNOWS]->(f:PERSON)-[:KNOWS]->(g:PERSON) "
     "WHERE id(p) = $0 RETURN g.id LIMIT 20",
     false},
};
constexpr int kNumTemplates = 4;
// Mix per 10 ops: 4x profile, 3x friends, 2x posts, 1x two-hop.
const int kMixSlots[10] = {0, 0, 0, 0, 1, 1, 1, 2, 2, 3};

struct LoopResult {
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t measured = 0;         // post-warmup OK responses
  uint64_t cache_hits = 0;       // ... of which plan_cache_hit was set
  LatencyRecorder short_reads;   // client-observed, post-warmup
  LatencyRecorder long_reads;
  LatencyRecorder phase_plan;    // server-side, post-warmup
  LatencyRecorder phase_bind;
  LatencyRecorder phase_exec;
  double qps = 0;
};

LoopResult RunLoop(uint16_t port, int conns, int ops, int warmup,
                   uint64_t num_persons) {
  std::mutex agg_mu;
  LoopResult agg;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(conns);
  for (int t = 0; t < conns; ++t) {
    pool.emplace_back([&, t] {
      LoopResult local;
      service::Client client;
      if (!client.Connect("127.0.0.1", port)) {
        local.errors += static_cast<uint64_t>(ops);
        std::lock_guard<std::mutex> lk(agg_mu);
        agg.errors += local.errors;
        return;
      }
      service::PrepareResult handles[kNumTemplates];
      for (int q = 0; q < kNumTemplates; ++q) {
        if (!client.Prepare(kTemplates[q].text, &handles[q])) {
          std::fprintf(stderr, "prepare(%s) failed: %s\n",
                       kTemplates[q].name, client.last_error().c_str());
          local.errors += static_cast<uint64_t>(ops);
          std::lock_guard<std::mutex> lk(agg_mu);
          agg.errors += local.errors;
          return;
        }
      }
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(t);
      for (int i = 0; i < ops; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        int q = kMixSlots[i % 10];
        std::vector<Value> params = {
            Value::Int(static_cast<int64_t>(rng % num_persons))};
        service::QueryResponse resp;
        Timer timer;
        if (!client.Execute(handles[q].handle, params, &resp) ||
            resp.status != service::WireStatus::kOk) {
          ++local.errors;
          continue;
        }
        ++local.ok;
        if (i < warmup) continue;
        ++local.measured;
        if (resp.plan_cache_hit != 0) ++local.cache_hits;
        double ms = timer.ElapsedMillis();
        (kTemplates[q].is_short ? local.short_reads : local.long_reads)
            .Add(ms);
        local.phase_plan.Add(resp.plan_millis);
        local.phase_bind.Add(resp.bind_millis);
        local.phase_exec.Add(resp.exec_millis);
      }
      std::lock_guard<std::mutex> lk(agg_mu);
      agg.ok += local.ok;
      agg.errors += local.errors;
      agg.measured += local.measured;
      agg.cache_hits += local.cache_hits;
      agg.short_reads.Merge(local.short_reads);
      agg.long_reads.Merge(local.long_reads);
      agg.phase_plan.Merge(local.phase_plan);
      agg.phase_bind.Merge(local.phase_bind);
      agg.phase_exec.Merge(local.phase_exec);
    });
  }
  Timer wall;
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  double elapsed = wall.ElapsedSeconds();
  agg.qps = elapsed > 0 ? static_cast<double>(agg.ok) / elapsed : 0;
  return agg;
}

void AddSection(BenchJsonReport* json, const std::string& section,
                const LoopResult& r, double hit_rate) {
  json->AddSectionScalar(section, "throughput_qps", r.qps);
  json->AddSectionScalar(section, "ok", static_cast<double>(r.ok));
  json->AddSectionScalar(section, "errors", static_cast<double>(r.errors));
  json->AddSectionScalar(section, "post_warmup_hit_rate", hit_rate);
  json->AddLatency(section, "short_reads", r.short_reads);
  json->AddLatency(section, "long_reads", r.long_reads);
  json->AddLatency(section, "phase_plan", r.phase_plan);
  json->AddLatency(section, "phase_bind", r.phase_bind);
  json->AddLatency(section, "phase_exec", r.phase_exec);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Plan cache: prepared short reads, cache on vs off ==\n");
  double sf = EnvDouble("GES_SF", 0.01);
  int conns = EnvInt("GES_PLANCACHE_CONNS", 8);
  int workers = EnvInt("GES_PLANCACHE_WORKERS", 2);
  int ops = EnvInt("GES_PLANCACHE_OPS", 2000);
  int warmup = EnvInt("GES_PLANCACHE_WARMUP", 50);
  double gate = EnvDouble("GES_PLANCACHE_GATE", 1.3);

  auto g = MakeGraph(sf);
  uint64_t num_persons = g->data.persons.size();

  BenchJsonReport json("plan_cache");
  json.AddScalar("sf", sf);
  json.AddScalar("connections", conns);
  json.AddScalar("query_workers", workers);
  json.AddScalar("ops_per_connection", ops);
  json.AddScalar("warmup_per_connection", warmup);

  // Interleaved rounds: on/off/on/off. Clock-frequency and scheduler
  // drift over the bench's lifetime then hits both configurations
  // roughly equally instead of biasing whichever ran last.
  int rounds = EnvInt("GES_PLANCACHE_ROUNDS", 2);
  LoopResult on, off;
  for (int round = 0; round < rounds; ++round) {
    for (bool cached : {true, false}) {
      service::ServiceConfig sc;
      sc.query_workers = workers;
      sc.plan_cache_entries = cached ? 128 : 0;
      service::Server server(&g->graph, &g->data, sc);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "server start failed: %s\n", error.c_str());
        return 1;
      }
      LoopResult r = RunLoop(server.port(), conns, ops, warmup, num_persons);
      LoopResult& agg = cached ? on : off;
      agg.ok += r.ok;
      agg.errors += r.errors;
      agg.measured += r.measured;
      agg.cache_hits += r.cache_hits;
      agg.qps += r.qps / rounds;
      agg.short_reads.Merge(r.short_reads);
      agg.long_reads.Merge(r.long_reads);
      agg.phase_plan.Merge(r.phase_plan);
      agg.phase_bind.Merge(r.phase_bind);
      agg.phase_exec.Merge(r.phase_exec);
      if (cached && round == rounds - 1) {
        std::printf("cache on:  hits=%llu misses=%llu evictions=%llu "
                    "(last round)\n",
                    static_cast<unsigned long long>(
                        server.stats().plan_cache_hits.load()),
                    static_cast<unsigned long long>(
                        server.stats().plan_cache_misses.load()),
                    static_cast<unsigned long long>(
                        server.stats().plan_cache_evictions.load()));
      }
      server.Drain(2.0);
    }
  }
  double hit_rate = on.measured > 0
                        ? static_cast<double>(on.cache_hits) /
                              static_cast<double>(on.measured)
                        : 0;

  TextTable table({"cache", "tput (q/s)", "short p50", "short p99",
                   "plan mean", "exec mean"});
  for (const auto* r : {&on, &off}) {
    char tput[32];
    std::snprintf(tput, sizeof(tput), "%.0f", r->qps);
    table.AddRow({r == &on ? "on" : "off", tput,
                  HumanMillis(r->short_reads.Percentile(50)),
                  HumanMillis(r->short_reads.Percentile(99)),
                  HumanMillis(r->phase_plan.Mean()),
                  HumanMillis(r->phase_exec.Mean())});
  }
  table.Print();

  AddSection(&json, "cache_on", on, hit_rate);
  AddSection(&json, "cache_off", off, 0.0);

  double on_p50 = on.short_reads.Percentile(50);
  double off_p50 = off.short_reads.Percentile(50);
  double speedup = on_p50 > 0 ? off_p50 / on_p50 : 0;
  json.AddScalar("short_p50_speedup", speedup);
  json.AddScalar("gate", gate);
  std::printf("\nshort-read p50: %.3fms (on) vs %.3fms (off) -> %.2fx "
              "(gate: >= %.2fx); post-warmup hit rate %.2f%%\n",
              on_p50, off_p50, speedup, gate, 100.0 * hit_rate);

  MaybeWriteJson(argc, argv, json);

  if (on.errors > 0 || off.errors > 0) {
    std::fprintf(stderr, "FAIL: %llu errors during the runs\n",
                 static_cast<unsigned long long>(on.errors + off.errors));
    return 1;
  }
  if (hit_rate < 0.99) {
    std::fprintf(stderr, "FAIL: post-warmup hit rate %.2f%% below 99%%\n",
                 100.0 * hit_rate);
    return 1;
  }
  if (speedup < gate) {
    std::fprintf(stderr, "FAIL: short-read p50 speedup %.2fx below the "
                 "%.2fx gate\n",
                 speedup, gate);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
