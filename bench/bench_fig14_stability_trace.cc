// Figure 14: throughput trace of GES_f* over a sustained benchmark run,
// broken down into IC / IS / IU operations per window.
//
// Paper shape: per-category throughput stays stable over the whole run
// (minor short-term fluctuations only).
#include <cstdio>

#include "bench/bench_util.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 14: throughput trace over the benchmark duration "
              "(GES_f*) ==\n");
  auto sfs = EnvSfList();
  double sf = sfs.back();
  double seconds = EnvDouble("GES_SECONDS", 10.0);
  int threads = EnvInt("GES_THREADS", 4);
  double window = EnvDouble("GES_WINDOW", 1.0);
  auto g = MakeGraph(sf);

  Driver driver(&g->graph, &g->data);
  DriverConfig config;
  config.mode = ExecMode::kFactorizedFused;
  config.options.collect_stats = false;
  config.threads = threads;
  config.duration_seconds = seconds;
  config.total_ops = 0;  // pure duration run
  config.trace_window_seconds = window;
  DriverReport report = driver.Run(config);

  std::printf("(%.0fs run, %d threads, %s, %.1fs windows)\n", seconds,
              threads, SfLabel(sf).c_str(), window);
  TextTable table({"t (s)", "IC/s", "IS/s", "IU/s", "total/s"});
  double min_total = 1e18, max_total = 0;
  for (size_t w = 0; w < report.trace.size(); ++w) {
    const TraceWindow& tw = report.trace[w];
    double scale = 1.0 / window;
    char t0[16], c1[16], c2[16], c3[16], c4[16];
    std::snprintf(t0, sizeof(t0), "%.0f", w * window);
    std::snprintf(c1, sizeof(c1), "%.0f", tw.ic * scale);
    std::snprintf(c2, sizeof(c2), "%.0f", tw.is * scale);
    std::snprintf(c3, sizeof(c3), "%.0f", tw.iu * scale);
    std::snprintf(c4, sizeof(c4), "%.0f", tw.total() * scale);
    table.AddRow({t0, c1, c2, c3, c4});
    double total = tw.total() * scale;
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
  }
  table.Print();
  std::printf("overall: %.0f q/s; window min/max total: %.0f / %.0f "
              "(ratio %.2f)\n",
              report.throughput, min_total, max_total,
              max_total / std::max(min_total, 1.0));
  std::printf("\nPaper shape check: per-window totals stay close to the "
              "overall mean (stable sustained performance).\n");
  BenchJsonReport json("fig14_stability_trace");
  json.AddScalar("sf", sf);
  json.AddScalar("seconds", seconds);
  json.AddScalar("threads", threads);
  json.AddScalar("window_seconds", window);
  json.AddScalar("window_min_qps", min_total);
  json.AddScalar("window_max_qps", max_total);
  AddDriverReport(&json, "mix", report);
  MaybeWriteJson(argc, argv, json);
  return 0;
}
