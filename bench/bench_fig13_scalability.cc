// Figure 13: throughput of GES_f* versus the number of driver/executor
// threads (inter-query parallelism), per scale factor.
//
// Paper shape: near-linear scaling at low thread counts, flattening as the
// core count / memory bandwidth is exhausted.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

using namespace ges;
using namespace ges::bench;

int main(int argc, char** argv) {
  std::printf("== Figure 13: throughput scalability with threads (GES_f*) "
              "==\n");
  double seconds = EnvDouble("GES_SECONDS", 2.0);
  BenchJsonReport json("fig13_scalability");
  json.AddScalar("seconds", seconds);
  // hardware_concurrency() may return 0 when the count is unknown.
  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Sweep past the core count so the flattening of the curve is visible;
  // on a single-core container the whole curve is flat (oversubscription),
  // which the shape check calls out.
  int max_threads = std::max(4u, hw) * 2;
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  std::printf("(%u hardware threads available)\n", hw);

  for (double sf : EnvSfList()) {
    auto g = MakeGraph(sf);
    std::printf("\n--- %s ---\n", SfLabel(sf).c_str());
    TextTable table({"threads", "throughput (q/s)", "speedup vs 1"});
    double base = 0;
    for (int t : thread_counts) {
      Driver driver(&g->graph, &g->data);
      DriverConfig config;
      config.mode = ExecMode::kFactorizedFused;
      config.options.collect_stats = false;
      config.threads = t;
      config.duration_seconds = seconds;
      config.total_ops = 0;  // pure duration run
      DriverReport report = driver.Run(config);
      json.AddSectionScalar(SfLabel(sf) + "/inter",
                            "threads_" + std::to_string(t),
                            report.throughput);
      if (t == 1) base = report.throughput;
      char tput[32], sp[16];
      std::snprintf(tput, sizeof(tput), "%.0f", report.throughput);
      std::snprintf(sp, sizeof(sp), "%.2fx",
                    report.throughput / std::max(base, 1e-9));
      table.AddRow({std::to_string(t), tput, sp});
    }
    table.Print();

    // Intra-query scaling: a single driver stream, heavy multi-hop queries,
    // sweeping options.intra_query_threads (the morsel bound). Both axes
    // ride the same process-wide TaskScheduler.
    std::printf("\n--- %s, intra-query (1 stream, heavy mix) ---\n",
                SfLabel(sf).c_str());
    std::vector<MixEntry> heavy = {
        {{QueryKind::kIC, 5}, 1.0},
        {{QueryKind::kIC, 9}, 1.0},
        {{QueryKind::kIC, 10}, 1.0},
        {{QueryKind::kIC, 14}, 1.0},
    };
    TextTable intra({"intra threads", "throughput (q/s)", "speedup vs 1"});
    double intra_base = 0;
    for (int t : thread_counts) {
      Driver driver(&g->graph, &g->data);
      DriverConfig config;
      config.mode = ExecMode::kFactorizedFused;
      config.options.collect_stats = false;
      config.options.intra_query_threads = t;
      config.threads = 1;
      config.mix = heavy;
      config.duration_seconds = seconds;
      config.total_ops = 0;  // pure duration run
      DriverReport report = driver.Run(config);
      json.AddSectionScalar(SfLabel(sf) + "/intra",
                            "threads_" + std::to_string(t),
                            report.throughput);
      if (t == 1) intra_base = report.throughput;
      char tput[32], sp[16];
      std::snprintf(tput, sizeof(tput), "%.0f", report.throughput);
      std::snprintf(sp, sizeof(sp), "%.2fx",
                    report.throughput / std::max(intra_base, 1e-9));
      intra.AddRow({std::to_string(t), tput, sp});
    }
    intra.Print();
  }
  std::printf("\nPaper shape check: throughput rises with threads; speedup "
              "approaches the core count before other resources bound it.\n"
              "Intra-query speedup > 1 at 2+ threads needs multiple cores; "
              "on one core the morsel runtime should merely not regress.\n");
  MaybeWriteJson(argc, argv, json);
  return 0;
}
