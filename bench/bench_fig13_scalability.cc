// Figure 13: throughput of GES_f* versus the number of driver/executor
// threads (inter-query parallelism), per scale factor.
//
// Paper shape: near-linear scaling at low thread counts, flattening as the
// core count / memory bandwidth is exhausted.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

using namespace ges;
using namespace ges::bench;

int main() {
  std::printf("== Figure 13: throughput scalability with threads (GES_f*) "
              "==\n");
  double seconds = EnvDouble("GES_SECONDS", 2.0);
  unsigned hw = std::thread::hardware_concurrency();
  // Sweep past the core count so the flattening of the curve is visible;
  // on a single-core container the whole curve is flat (oversubscription),
  // which the shape check calls out.
  int max_threads = std::max(4u, hw) * 2;
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  std::printf("(%u hardware threads available)\n", hw);

  for (double sf : EnvSfList()) {
    auto g = MakeGraph(sf);
    std::printf("\n--- %s ---\n", SfLabel(sf).c_str());
    TextTable table({"threads", "throughput (q/s)", "speedup vs 1"});
    double base = 0;
    for (int t : thread_counts) {
      Driver driver(&g->graph, &g->data);
      DriverConfig config;
      config.mode = ExecMode::kFactorizedFused;
      config.options.collect_stats = false;
      config.threads = t;
      config.duration_seconds = seconds;
      DriverReport report = driver.Run(config);
      if (t == 1) base = report.throughput;
      char tput[32], sp[16];
      std::snprintf(tput, sizeof(tput), "%.0f", report.throughput);
      std::snprintf(sp, sizeof(sp), "%.2fx",
                    report.throughput / std::max(base, 1e-9));
      table.AddRow({std::to_string(t), tput, sp});
    }
    table.Print();
  }
  std::printf("\nPaper shape check: throughput rises with threads; speedup "
              "approaches the core count before other resources bound it.\n");
  return 0;
}
