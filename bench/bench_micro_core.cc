// Microbenchmarks of the core factorized data structures (google-benchmark):
// f-Tree enumeration, tuple-count DP, flat-vs-lazy expand, selection
// filtering. These quantify the constant factors behind the macro results.
#include <benchmark/benchmark.h>

#include <string>

#include "datagen/snb_generator.h"
#include "executor/executor.h"
#include "executor/ftree.h"
#include "queries/ldbc.h"
#include "runtime/scheduler.h"

namespace ges {
namespace {

// A fan-out tree: one root row, `fan1` children rows, each with `fan2`
// grandchildren rows.
std::unique_ptr<FTree> MakeFanTree(int fan1, int fan2) {
  auto tree = std::make_unique<FTree>();
  FTreeNode* r = tree->CreateRoot();
  ValueVector root_ids(ValueType::kInt64);
  root_ids.AppendInt(0);
  r->block.AddColumn("a", std::move(root_ids));
  tree->RegisterColumns(r);

  FTreeNode* mid = tree->AddChild(r);
  ValueVector mid_ids(ValueType::kInt64);
  for (int i = 0; i < fan1; ++i) mid_ids.AppendInt(i);
  mid->block.AddColumn("b", std::move(mid_ids));
  mid->parent_index = {{0, static_cast<uint64_t>(fan1)}};
  tree->RegisterColumns(mid);

  FTreeNode* leaf = tree->AddChild(mid);
  ValueVector leaf_ids(ValueType::kInt64);
  for (int i = 0; i < fan1 * fan2; ++i) leaf_ids.AppendInt(i);
  leaf->block.AddColumn("c", std::move(leaf_ids));
  leaf->parent_index.resize(fan1);
  for (int i = 0; i < fan1; ++i) {
    leaf->parent_index[i] = IndexRange{static_cast<uint64_t>(i) * fan2,
                                       static_cast<uint64_t>(i + 1) * fan2};
  }
  tree->RegisterColumns(leaf);
  return tree;
}

void BM_TupleEnumeration(benchmark::State& state) {
  auto tree = MakeFanTree(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TupleEnumerator e(*tree);
    uint64_t n = 0;
    while (e.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_TupleEnumeration)->Arg(32)->Arg(128)->Arg(512);

void BM_TupleCountDP(benchmark::State& state) {
  auto tree = MakeFanTree(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->CountTuples());
  }
}
BENCHMARK(BM_TupleCountDP)->Arg(32)->Arg(128)->Arg(512);

void BM_Flatten(benchmark::State& state) {
  auto tree = MakeFanTree(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Schema s;
    s.Add("a", ValueType::kInt64);
    s.Add("b", ValueType::kInt64);
    s.Add("c", ValueType::kInt64);
    FlatBlock out(s);
    tree->Flatten({"a", "b", "c"}, &out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Flatten)->Arg(32)->Arg(128)->Arg(512);

struct MicroGraph {
  Graph graph;
  SnbData data;
  LdbcContext ctx;

  static MicroGraph& Get() {
    static MicroGraph* g = new MicroGraph();
    return *g;
  }

 private:
  MicroGraph() {
    SnbConfig config;
    config.scale_factor = 0.02;
    data = GenerateSnb(config, &graph);
    ctx = LdbcContext::Resolve(graph, data.schema);
  }
};

void BM_ExpandIC9(benchmark::State& state) {
  MicroGraph& g = MicroGraph::Get();
  ExecMode mode = static_cast<ExecMode>(state.range(0));
  Executor exec(mode, ExecOptions{.collect_stats = false});
  ParamGen gen(&g.graph, &g.data, 42);
  LdbcParams p = gen.Next();
  GraphView view(&g.graph);
  Plan plan = BuildIC(9, g.ctx, p);
  for (auto _ : state) {
    QueryResult r = exec.Run(plan, view);
    benchmark::DoNotOptimize(r.table.NumRows());
  }
  state.SetLabel(ExecModeName(mode));
}
BENCHMARK(BM_ExpandIC9)
    ->Arg(static_cast<int>(ExecMode::kVolcano))
    ->Arg(static_cast<int>(ExecMode::kFlat))
    ->Arg(static_cast<int>(ExecMode::kFactorized))
    ->Arg(static_cast<int>(ExecMode::kFactorizedFused));

// The morsel-parallel Expand path (GES_f*): arg = intra_query_threads.
// On one core the parallel setting must not regress; on multi-core the
// hardware_concurrency run should beat threads=1.
void BM_ExpandIC9Parallel(benchmark::State& state) {
  MicroGraph& g = MicroGraph::Get();
  int threads = static_cast<int>(state.range(0));
  Executor exec(ExecMode::kFactorizedFused,
                ExecOptions{.intra_query_threads = threads,
                            .collect_stats = false});
  ParamGen gen(&g.graph, &g.data, 42);
  LdbcParams p = gen.Next();
  GraphView view(&g.graph);
  Plan plan = BuildIC(9, g.ctx, p);
  for (auto _ : state) {
    QueryResult r = exec.Run(plan, view);
    benchmark::DoNotOptimize(r.table.NumRows());
  }
  state.SetLabel("intra_threads=" + std::to_string(threads));
}
BENCHMARK(BM_ExpandIC9Parallel)
    ->Arg(1)
    ->Arg(static_cast<int>(HardwareThreads()));

}  // namespace
}  // namespace ges

BENCHMARK_MAIN();
